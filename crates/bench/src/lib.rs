//! Shared experiment configuration for the table/figure regeneration
//! binaries and Criterion benchmarks.
//!
//! The canonical seeds, sizes, and tree configuration live in the
//! [`pipeline`] crate's experiment registry and are re-exported here,
//! so `cargo run -p spec-bench --bin <exp>` regenerates each artifact
//! byte-identically whether the artifact store is cold or warm. The
//! helpers below resolve the canonical datasets and headline trees
//! through a [`PipelineContext`], which is what makes warm reruns of
//! every experiment skip generation and fitting entirely.

use modeltree::ModelTree;
use perfcounters::Dataset;
use pipeline::{DatasetSpec, PipelineContext, TransferSplit, TransferSplitSpec, TreeSpec};
use std::sync::Arc;
use transfer::{MatrixSpec, TransferMatrix};

pub mod artifacts;

pub use pipeline::{suite_tree_config, N_SAMPLES, SEED_CPU2006, SEED_OMP2001, SEED_SPLIT};

/// The canonical SPEC CPU2006 experiment dataset, generated directly
/// (no cache). Prefer [`cpu2006_artifacts`] in experiment binaries.
pub fn cpu2006_dataset() -> Dataset {
    DatasetSpec::cpu2006()
        .compute(1)
        .expect("canonical suite generation cannot fail")
}

/// The canonical SPEC OMP2001 experiment dataset, generated directly
/// (no cache). Prefer [`omp2001_artifacts`] in experiment binaries.
pub fn omp2001_dataset() -> Dataset {
    DatasetSpec::omp2001()
        .compute(1)
        .expect("canonical suite generation cannot fail")
}

/// Fits the headline tree for a suite dataset (no cache). Prefer the
/// `*_artifacts` helpers in experiment binaries.
pub fn fit_suite_tree(data: &Dataset) -> ModelTree {
    ModelTree::fit(data, &suite_tree_config(data.len())).expect("suite dataset is non-empty")
}

/// Resolves the canonical CPU2006 dataset and its headline tree
/// through `ctx` (cache hits on warm stores).
pub fn cpu2006_artifacts(ctx: &PipelineContext) -> (Arc<Dataset>, Arc<ModelTree>) {
    suite_artifacts(ctx, DatasetSpec::cpu2006())
}

/// Resolves the canonical OMP2001 dataset and its headline tree
/// through `ctx` (cache hits on warm stores).
pub fn omp2001_artifacts(ctx: &PipelineContext) -> (Arc<Dataset>, Arc<ModelTree>) {
    suite_artifacts(ctx, DatasetSpec::omp2001())
}

/// Resolves any suite dataset spec and its headline tree through `ctx`.
pub fn suite_artifacts(ctx: &PipelineContext, spec: DatasetSpec) -> (Arc<Dataset>, Arc<ModelTree>) {
    let data = ctx
        .dataset(&spec)
        .expect("suite generation cannot fail for registry specs");
    let tree = ctx
        .tree(&TreeSpec::suite_tree(spec))
        .expect("suite dataset is non-empty");
    (data, tree)
}

/// Resolves the Section VI transfer protocol — the four split parts and
/// the two 10% trees — through `ctx`. Both trees use the configuration
/// derived from the CPU training-set size, matching the checked-in
/// `results/transferability.txt` artifact.
pub fn transfer_artifacts(
    ctx: &PipelineContext,
) -> (TransferSplit, Arc<ModelTree>, Arc<ModelTree>) {
    let spec = TransferSplitSpec::canonical();
    let m5 = suite_tree_config(spec.cpu_train_len());
    let cpu_tree = ctx
        .tree(&TreeSpec {
            input: pipeline::DatasetInput::TransferPart(
                spec.clone(),
                pipeline::TransferPart::CpuTrain,
            ),
            config: m5,
        })
        .expect("cpu training split is non-empty");
    let omp_tree = ctx
        .tree(&TreeSpec {
            input: pipeline::DatasetInput::TransferPart(
                spec.clone(),
                pipeline::TransferPart::OmpTrain,
            ),
            config: m5,
        })
        .expect("omp training split is non-empty");
    let split = ctx
        .transfer_split(&spec)
        .expect("canonical suites generate");
    (split, cpu_tree, omp_tree)
}

/// Resolves the canonical E8 cross-generation transfer matrix through
/// `ctx`. The thread count only affects wall clock — the matrix is
/// bit-identical for every value.
pub fn matrix_artifacts(ctx: &PipelineContext, n_threads: usize) -> TransferMatrix {
    TransferMatrix::assess_all(ctx, &MatrixSpec::canonical(), n_threads)
        .expect("canonical suites assess")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_datasets_are_deterministic() {
        let a = cpu2006_dataset();
        let b = cpu2006_dataset();
        assert_eq!(a.len(), N_SAMPLES);
        assert_eq!(a.sample(0), b.sample(0));
        assert_eq!(a.sample(N_SAMPLES - 1), b.sample(N_SAMPLES - 1));
    }

    #[test]
    fn suite_config_scales_with_n() {
        assert_eq!(suite_tree_config(60_000).min_leaf, 300);
        assert_eq!(suite_tree_config(100).min_leaf, 4);
    }
}
