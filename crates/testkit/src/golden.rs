//! Golden-snapshot framework for the E2–E8 `results/` artifacts.
//!
//! Every experiment binary renders its artifact through a pure
//! `spec_bench::artifacts` function; the checked-in files under
//! `results/` are the golden copies. [`check_or_bless`] compares a
//! freshly-rendered artifact **byte for byte** against its golden file,
//! so any drift in the experiment pipeline — numeric, formatting, or
//! structural — fails CI with a readable first-difference report.
//!
//! To intentionally update the goldens after a reviewed behavior
//! change, run the snapshot suite with `TESTKIT_BLESS=1`:
//!
//! ```text
//! TESTKIT_BLESS=1 cargo test -p testkit --test golden_snapshots
//! ```
//!
//! which rewrites the files in place (the diff then shows up in review
//! like any other change).

use std::path::PathBuf;

/// True when `TESTKIT_BLESS=1` requests golden regeneration.
pub fn blessing() -> bool {
    std::env::var("TESTKIT_BLESS").is_ok_and(|v| v == "1")
}

/// The repository's `results/` directory, resolved relative to this
/// crate so tests work from any working directory.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results")
}

/// Compares `rendered` byte-for-byte against `results/<name>`, or
/// rewrites the golden when [`blessing`]. Returns a first-difference
/// description on mismatch.
///
/// # Errors
///
/// Returns a human-readable description when the golden file is
/// missing, unreadable, or differs from `rendered`.
pub fn check_or_bless(name: &str, rendered: &str) -> Result<(), String> {
    let path = results_dir().join(name);
    if blessing() {
        std::fs::write(&path, rendered)
            .map_err(|e| format!("cannot bless {}: {e}", path.display()))?;
        return Ok(());
    }
    let golden = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read golden {}: {e} (run with TESTKIT_BLESS=1 to create it)",
            path.display()
        )
    })?;
    if golden == rendered {
        return Ok(());
    }
    Err(first_difference(name, &golden, rendered))
}

/// Builds a readable report of the first differing line between the
/// golden and rendered artifact.
fn first_difference(name: &str, golden: &str, rendered: &str) -> String {
    let g_lines: Vec<&str> = golden.lines().collect();
    let r_lines: Vec<&str> = rendered.lines().collect();
    for (i, (g, r)) in g_lines.iter().zip(&r_lines).enumerate() {
        if g != r {
            return format!(
                "{name}: line {} differs\n  golden:   {g:?}\n  rendered: {r:?}\n\
                 (TESTKIT_BLESS=1 regenerates the golden if this change is intended)",
                i + 1
            );
        }
    }
    format!(
        "{name}: line counts differ (golden {} vs rendered {}); \
         common prefix matches (TESTKIT_BLESS=1 regenerates the golden if this change is intended)",
        g_lines.len(),
        r_lines.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_in_repo() {
        assert!(results_dir().is_dir(), "{:?} missing", results_dir());
    }

    #[test]
    fn first_difference_pinpoints_line() {
        let report = first_difference("x.txt", "a\nb\nc\n", "a\nB\nc\n");
        assert!(report.contains("line 2"), "{report}");
        let report = first_difference("x.txt", "a\n", "a\nb\n");
        assert!(report.contains("line counts differ"), "{report}");
    }
}
