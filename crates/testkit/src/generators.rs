//! Seeded dataset generators for the differential and metamorphic
//! suites.
//!
//! Every generator is a pure function of its seed, so failures
//! reproduce exactly. The family deliberately spans both "nice"
//! learnable data and adversarial shapes the optimized trainer's
//! bookkeeping could plausibly mishandle: exact ties and near-tied
//! thresholds (sort-order and boundary bugs), all-equal targets
//! (zero-variance stops), datasets small enough to force single-row
//! leaves, duplicated rows, constant columns, and non-finite cells.

use perfcounters::events::EventId;
use perfcounters::{Dataset, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attributes the generators use as predictive signal.
const SIGNAL_POOL: [EventId; 6] = [
    EventId::DtlbMiss,
    EventId::L2Miss,
    EventId::Load,
    EventId::MisprBr,
    EventId::L1DMiss,
    EventId::Store,
];

fn background_noise(rng: &mut StdRng, sample: &mut Sample) {
    for event in EventId::ALL {
        if sample.get(event) == 0.0 {
            sample.set(event, rng.gen::<f64>() * 1e-3);
        }
    }
}

/// A general mixed-signal dataset: 2–4 signal attributes drive CPI
/// through a two-regime piecewise-linear response plus noise, the rest
/// carry background noise. Some seeds quantize a signal column (exact
/// ties) or append duplicated rows.
pub fn random_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 24 + rng.gen_range(0usize..117);
    let n_signals = 2 + rng.gen_range(0usize..3);
    let offset = rng.gen_range(0usize..SIGNAL_POOL.len());
    let signals: Vec<EventId> = (0..n_signals)
        .map(|i| SIGNAL_POOL[(offset + i) % SIGNAL_POOL.len()])
        .collect();
    let coefs: Vec<f64> = signals.iter().map(|_| rng.gen_range(5.0..60.0)).collect();
    let regime_cut = rng.gen_range(0.3..0.7);
    let noise_amp = rng.gen_range(0.0..0.15);
    let quantize = rng.gen_bool(0.3);
    let duplicate_tail = rng.gen_bool(0.2);

    let mut ds = Dataset::new();
    let label = ds.add_benchmark(&format!("gen_{seed}"));
    let mut rows: Vec<Sample> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut s = Sample::zeros(0.0);
        let mut cpi = 0.4;
        for (k, (&event, &coef)) in signals.iter().zip(&coefs).enumerate() {
            let mut x = rng.gen::<f64>() * 0.02;
            if quantize && k == 0 {
                // Snap to a coarse grid: exact ties across rows.
                x = (x * 400.0).round() / 400.0;
            }
            s.set(event, x);
            // Two-regime response on the first signal, linear on the
            // rest — gives the tree a real split to find.
            if k == 0 && x > regime_cut * 0.02 {
                cpi += coef * x * 2.5 + 0.3;
            } else {
                cpi += coef * x;
            }
        }
        background_noise(&mut rng, &mut s);
        cpi += noise_amp * (rng.gen::<f64>() - 0.5);
        s.set_cpi(cpi);
        rows.push(s);
    }
    if duplicate_tail {
        let dup: Vec<Sample> = rows.iter().take(rows.len() / 4).cloned().collect();
        rows.extend(dup);
    }
    for s in rows {
        ds.push(s, label);
    }
    ds
}

/// Heavily quantized attributes and targets: almost every adjacent pair
/// in sorted order is an exact tie or separated by one quantum, so
/// threshold admissibility and tie-skipping logic is on the critical
/// path everywhere.
pub fn near_tied_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 30 + rng.gen_range(0usize..50);
    let quantum = 1e-4;
    let mut ds = Dataset::new();
    let label = ds.add_benchmark(&format!("tied_{seed}"));
    for _ in 0..n {
        let mut s = Sample::zeros(0.0);
        for event in EventId::ALL {
            let steps = rng.gen_range(0u64..6);
            s.set(event, steps as f64 * quantum);
        }
        // CPI quantized too: many equal-target runs.
        let cpi = 1.0
            + (s.get(EventId::Load) * 40.0 * 1e4).round() / 1e4
            + rng.gen_range(0u64..3) as f64 * 0.05;
        s.set_cpi(cpi);
        ds.push(s, label);
    }
    ds
}

/// Every sample has the same CPI: the root has zero target variance and
/// the tree must collapse to a single constant leaf.
///
/// The constant is a dyadic rational (`k/4`) so that the running sums
/// of `cpi` and `cpi^2` are exact and the computed root variance is
/// exactly zero — not merely tiny accumulation noise.
pub fn all_equal_target_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 20 + rng.gen_range(0usize..40);
    let cpi = 0.5 + 0.25 * rng.gen_range(0u64..10) as f64;
    let mut ds = Dataset::new();
    let label = ds.add_benchmark(&format!("flat_{seed}"));
    for _ in 0..n {
        let mut s = Sample::zeros(cpi);
        background_noise(&mut rng, &mut s);
        ds.push(s, label);
    }
    ds
}

/// A dataset small enough that `min_leaf = 1` configurations force
/// single-row leaves.
pub fn tiny_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2 + rng.gen_range(0usize..5);
    let mut ds = Dataset::new();
    let label = ds.add_benchmark(&format!("tiny_{seed}"));
    for i in 0..n {
        let mut s = Sample::zeros(0.8 + 0.4 * i as f64 + rng.gen::<f64>() * 0.01);
        s.set(EventId::Load, 0.1 * (i + 1) as f64);
        background_noise(&mut rng, &mut s);
        ds.push(s, label);
    }
    ds
}

/// The mixed pool the differential sweep iterates over: mostly general
/// datasets, with every tenth seed drawing one of the adversarial
/// shapes.
pub fn differential_dataset(index: usize) -> Dataset {
    let seed = 0xD1FF_0000 + index as u64;
    match index % 10 {
        7 => near_tied_dataset(seed),
        8 => all_equal_target_dataset(seed),
        9 => tiny_dataset(seed),
        _ => random_dataset(seed),
    }
}

/// Rebuilds a dataset sample-by-sample through `f`, preserving
/// benchmark names and label assignments.
pub fn map_samples<F>(data: &Dataset, mut f: F) -> Dataset
where
    F: FnMut(usize, &Sample) -> Sample,
{
    let mut out = Dataset::new();
    let mut label_map = std::collections::BTreeMap::new();
    for (i, (sample, label)) in data.iter().enumerate() {
        let new_label = *label_map.entry(label).or_insert_with(|| {
            out.add_benchmark(data.benchmark_name(label).expect("label has a name"))
        });
        out.push(f(i, sample), new_label);
    }
    out
}

/// Reorders rows by the permutation drawn from `seed` (Fisher–Yates).
pub fn permute_rows(data: &Dataset, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    let mut out = Dataset::new();
    let mut label_map = std::collections::BTreeMap::new();
    for &i in &order {
        let label = data.label(i);
        let new_label = *label_map.entry(label).or_insert_with(|| {
            out.add_benchmark(data.benchmark_name(label).expect("label has a name"))
        });
        out.push(data.sample(i).clone(), new_label);
    }
    out
}

/// Swaps two attribute columns in every sample (a relabeling of the
/// event schema).
pub fn swap_columns(data: &Dataset, a: EventId, b: EventId) -> Dataset {
    map_samples(data, |_, s| {
        let mut t = s.clone();
        t.set(a, s.get(b));
        t.set(b, s.get(a));
        t
    })
}

/// Applies the affine map `cpi -> scale * cpi + shift` to every target.
pub fn rescale_target(data: &Dataset, scale: f64, shift: f64) -> Dataset {
    map_samples(data, |_, s| {
        let mut t = s.clone();
        t.set_cpi(scale * s.cpi() + shift);
        t
    })
}

/// Repeats every row `k` times, adjacently (row i's copies stay
/// together, preserving relative order).
pub fn duplicate_rows(data: &Dataset, k: usize) -> Dataset {
    let mut out = Dataset::new();
    let mut label_map = std::collections::BTreeMap::new();
    for (sample, label) in data.iter() {
        let new_label = *label_map.entry(label).or_insert_with(|| {
            out.add_benchmark(data.benchmark_name(label).expect("label has a name"))
        });
        for _ in 0..k {
            out.push(sample.clone(), new_label);
        }
    }
    out
}

/// Snaps every CPI to the dyadic grid `2^-16` (exactly representable,
/// and small-magnitude enough that sums over thousands of rows stay
/// exact in `f64`). Used by relations whose bit-exactness argument
/// needs exact target sums — e.g. duplicated-row reweighting, where
/// the doubled dataset's running sums must be exactly twice the
/// original's regardless of accumulation interleaving.
pub fn quantize_target(data: &Dataset) -> Dataset {
    let grid = 65536.0; // 2^16
    map_samples(data, |_, s| {
        let mut t = s.clone();
        t.set_cpi((s.cpi() * grid).round() / grid);
        t
    })
}

/// Overwrites one attribute with the same value in every row.
pub fn with_constant_column(data: &Dataset, event: EventId, value: f64) -> Dataset {
    map_samples(data, |_, s| {
        let mut t = s.clone();
        t.set(event, value);
        t
    })
}

/// Injects a single non-finite cell (`value` = NaN or ±inf) at a
/// seed-chosen row and attribute.
pub fn with_poisoned_cell(data: &Dataset, value: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let row = rng.gen_range(0..data.len());
    let event = EventId::ALL[rng.gen_range(0..EventId::ALL.len())];
    map_samples(data, |i, s| {
        let mut t = s.clone();
        if i == row {
            t.set(event, value);
        }
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for f in [random_dataset, near_tied_dataset, tiny_dataset] {
            let a = f(42);
            let b = f(42);
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert_eq!(a.sample(i).cpi().to_bits(), b.sample(i).cpi().to_bits());
            }
        }
    }

    #[test]
    fn transforms_preserve_row_count_and_multiply() {
        let ds = random_dataset(7);
        assert_eq!(permute_rows(&ds, 3).len(), ds.len());
        assert_eq!(duplicate_rows(&ds, 3).len(), 3 * ds.len());
        let swapped = swap_columns(&ds, EventId::Load, EventId::L2Miss);
        assert_eq!(
            swapped.sample(0).get(EventId::Load).to_bits(),
            ds.sample(0).get(EventId::L2Miss).to_bits()
        );
        let scaled = rescale_target(&ds, 2.0, 1.0);
        assert_eq!(
            scaled.sample(0).cpi().to_bits(),
            (2.0 * ds.sample(0).cpi() + 1.0).to_bits()
        );
    }

    #[test]
    fn poisoned_cell_lands_somewhere() {
        let ds = random_dataset(11);
        let bad = with_poisoned_cell(&ds, f64::NAN, 5);
        let nan_cells: usize = (0..bad.len())
            .map(|i| {
                EventId::ALL
                    .iter()
                    .filter(|&&e| bad.sample(i).get(e).is_nan())
                    .count()
            })
            .sum();
        assert_eq!(nan_cells, 1);
    }
}
