//! A deliberately naive reference implementation of M5' — the
//! differential oracle for [`modeltree::ModelTree`].
//!
//! Where the optimized trainer presorts every attribute once and
//! maintains sorted order by in-place stable partitioning of arena
//! segments, fits node models from a single precomputed Gram system,
//! and fans sibling subtrees out to scoped threads, this implementation
//! does the obvious thing at every step:
//!
//! * each node **re-sorts** every attribute from scratch with a stable
//!   `total_cmp` sort,
//! * children are plain filtered copies of the parent's row list,
//! * every attribute-subset trial during elimination rebuilds its
//!   normal equations directly from the raw rows,
//! * recursion is single-threaded `Box`ed structure, no arenas.
//!
//! # The bit-identity contract
//!
//! The differential suite asserts the optimized trainer produces
//! **bit-identical** trees. For that to be a meaningful check, the two
//! implementations must share the *decision arithmetic* — the exact
//! floating-point expressions whose results are compared or thresholded
//! (the division-free split criterion `w = sqrt(n_l·Σy²_l − (Σy_l)²) +
//! sqrt(n_r·Σy²_r − (Σy_r)²)`, midpoint thresholds, the `1e-12·sd`
//! floor, the adjusted-error factor, the smoothing recurrence) and the
//! tie-breaking rules (leftmost threshold on `<`, earliest attribute on
//! `>`, earliest dropped term on `<`). Those expressions are restated
//! here from the algorithm's definition, independently of the optimized
//! code's data structures. What this oracle deliberately does **not**
//! share is everything PR 1 and PR 2 changed: sort maintenance,
//! partition bookkeeping, Gram caching, thread scheduling, arena reuse
//! — which is exactly the machinery a differential test is meant to
//! cross-examine.
//!
//! Accumulation order matters for bit-identity: sums over a node's
//! samples are always taken in the node's row order, which both
//! implementations keep as *original dataset order* (stable sorts tie
//! on it; stable partitions preserve it).

use modeltree::{LinearModel, M5Config, ModelTree, NodeKind};
use perfcounters::events::{EventId, N_EVENTS};
use perfcounters::{Dataset, Sample};

/// Column copies of a dataset: the reference never touches the
/// optimized trainer's columnar cache.
struct RefColumns {
    events: Vec<Vec<f64>>,
    cpi: Vec<f64>,
}

impl RefColumns {
    fn new(data: &Dataset) -> RefColumns {
        RefColumns {
            events: EventId::ALL.iter().map(|&e| data.column(e)).collect(),
            cpi: data.iter().map(|(s, _)| s.cpi()).collect(),
        }
    }

    fn event(&self, e: EventId) -> &[f64] {
        &self.events[e.index()]
    }
}

/// Target statistics of one node, accumulated in row order.
#[derive(Clone, Copy)]
struct RefStats {
    n: usize,
    sum: f64,
    sum_sq: f64,
}

impl RefStats {
    fn compute(cpi: &[f64], rows: &[u32]) -> RefStats {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for &i in rows {
            let y = cpi[i as usize];
            sum += y;
            sum_sq += y * y;
        }
        RefStats {
            n: rows.len(),
            sum,
            sum_sq,
        }
    }

    fn mean(&self) -> f64 {
        self.sum / self.n as f64
    }

    fn sd(&self) -> f64 {
        let mean = self.mean();
        (self.sum_sq / self.n as f64 - mean * mean).max(0.0).sqrt()
    }
}

/// A chosen split.
#[derive(Clone, Copy)]
struct RefSplit {
    event: EventId,
    threshold: f64,
    sdr: f64,
}

/// The structural role of a reference node.
pub enum RefKind {
    /// A leaf with its 1-based left-to-right model number.
    Leaf {
        /// 1-based linear model number.
        lm_index: usize,
    },
    /// An interior `event <= threshold` test.
    Split {
        /// The tested attribute.
        event: EventId,
        /// Samples with `value <= threshold` descend left.
        threshold: f64,
        /// Standard-deviation reduction of the split.
        sdr: f64,
        /// Left child.
        left: Box<RefNode>,
        /// Right child.
        right: Box<RefNode>,
    },
}

/// One node of the reference tree.
pub struct RefNode {
    /// Structural role.
    pub kind: RefKind,
    /// The node's linear model (interior nodes keep theirs for
    /// smoothing).
    pub model: LinearModel,
    /// Training samples that reached this node.
    pub n_samples: usize,
    /// Mean training CPI here.
    pub mean_cpi: f64,
    /// Population sd of training CPI here.
    pub sd_cpi: f64,
}

/// A reference M5' model tree.
pub struct RefTree {
    root: RefNode,
    config: M5Config,
    n_training: usize,
    root_sd: f64,
}

/// Growing-phase node.
struct GrownRef {
    rows: Vec<u32>,
    stats: RefStats,
    split: Option<(RefSplit, Box<GrownRef>, Box<GrownRef>)>,
}

/// Pruning-phase node.
struct PrunedRef {
    model: LinearModel,
    n_samples: usize,
    mean_cpi: f64,
    sd_cpi: f64,
    subtree_error: f64,
    attrs: Vec<EventId>,
    split: Option<(RefSplit, Box<PrunedRef>, Box<PrunedRef>)>,
}

/// The M5 adjusted-error factor `(n + v) / (n - v)` (infinite when the
/// model has at least as many parameters as samples).
fn adjusted_error_factor(n: usize, v: usize) -> f64 {
    if n <= v {
        f64::INFINITY
    } else {
        (n + v) as f64 / (n - v) as f64
    }
}

/// Mean absolute error of `model` over the selected rows, accumulated
/// in row order.
fn mean_abs_error(cols: &RefColumns, model: &LinearModel, rows: &[u32]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let sum: f64 = rows
        .iter()
        .map(|&i| {
            let i = i as usize;
            let predicted = model.intercept()
                + model
                    .terms()
                    .iter()
                    .map(|(e, c)| c * cols.event(*e)[i])
                    .sum::<f64>();
            (predicted - cols.cpi[i]).abs()
        })
        .sum();
    sum / rows.len() as f64
}

/// Solves one least-squares subproblem by building the normal equations
/// straight from the raw rows (no shared Gram system): design columns
/// are `[1] ++ candidates[active]`, accumulated sample-by-sample in row
/// order. Returns the model and its sum of squared errors.
fn solve_subset(
    cols: &RefColumns,
    rows: &[u32],
    candidates: &[EventId],
    active: &[usize],
) -> (LinearModel, f64) {
    let m = active.len() + 1;
    let mut g = mathkit::matrix::Matrix::zeros(m, m);
    let mut c = vec![0.0; m];
    let mut yty = 0.0;
    let mut row = vec![0.0; m];
    for &i in rows {
        let i = i as usize;
        row[0] = 1.0;
        for (j, &a) in active.iter().enumerate() {
            row[j + 1] = cols.event(candidates[a])[i];
        }
        let y = cols.cpi[i];
        yty += y * y;
        for a in 0..m {
            c[a] += row[a] * y;
            for b in 0..m {
                g[(a, b)] += row[a] * row[b];
            }
        }
    }
    // Same solve chain as the trainer: exact SPD first, ridge only for
    // degenerate designs, mean-only constant as the last resort.
    let solution = mathkit::solve::solve_spd(&g, &c)
        .ok()
        .filter(|beta| beta.iter().all(|v| v.is_finite()))
        .map_or_else(|| mathkit::solve::solve_ridge(&g, &c, 1e-10), Ok);
    match solution {
        Ok(beta) => {
            let sse = (yty - beta.iter().zip(&c).map(|(b, ci)| b * ci).sum::<f64>()).max(0.0);
            let terms: Vec<(EventId, f64)> = active
                .iter()
                .zip(beta.iter().skip(1))
                .map(|(&a, &coef)| (candidates[a], coef))
                .collect();
            (LinearModel::new(beta[0], terms), sse)
        }
        Err(_) => {
            let n = rows.len();
            let mean = if n > 0 { c[0] / n as f64 } else { 0.0 };
            let sse = (yty - mean * c[0]).max(0.0);
            (LinearModel::constant(mean), sse)
        }
    }
}

fn adjusted_rmse(n: usize, sse: f64, v: usize) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    (sse / n as f64).sqrt() * adjusted_error_factor(n, v)
}

/// Textbook node-model fitting: full least squares over the candidate
/// attributes, then greedy backward elimination accepting the drop with
/// the smallest adjusted RMSE no worse than the incumbent (earliest
/// position on exact ties).
fn fit_node_model(
    cols: &RefColumns,
    rows: &[u32],
    candidates: &[EventId],
    config: &M5Config,
) -> LinearModel {
    if rows.is_empty() {
        return LinearModel::constant(0.0);
    }
    if candidates.is_empty() {
        return solve_subset(cols, rows, candidates, &[]).0;
    }
    let mut active: Vec<usize> = (0..candidates.len()).collect();
    // Pre-trim so n > v + 1, dropping from the end of the list.
    while !active.is_empty() && rows.len() <= active.len() + 2 {
        active.pop();
    }
    let (mut model, sse) = solve_subset(cols, rows, candidates, &active);
    if !config.attribute_elimination {
        return model;
    }
    let mut best_adjusted = adjusted_rmse(rows.len(), sse, active.len() + 1);
    loop {
        if active.is_empty() {
            break;
        }
        let mut best_drop: Option<(usize, LinearModel, f64)> = None;
        for pos in 0..active.len() {
            let mut trial = active.clone();
            trial.remove(pos);
            let (m, s) = solve_subset(cols, rows, candidates, &trial);
            let adj = adjusted_rmse(rows.len(), s, trial.len() + 1);
            if adj <= best_adjusted && best_drop.as_ref().is_none_or(|(_, _, prev)| adj < *prev) {
                best_drop = Some((pos, m, adj));
            }
        }
        match best_drop {
            Some((pos, m, adj)) => {
                active.remove(pos);
                model = m;
                best_adjusted = adj;
            }
            None => break,
        }
    }
    model
}

/// Scans one attribute for its best admissible threshold: stable-sort
/// the node's rows by the attribute, then walk every boundary between
/// distinct adjacent values accumulating `(n, Σy, Σy²)` prefix sums.
fn scan_attribute(
    cols: &RefColumns,
    rows: &[u32],
    event: EventId,
    min_leaf: usize,
    stats: &RefStats,
    total_sd: f64,
) -> Option<RefSplit> {
    let col = cols.event(event);
    let mut seg: Vec<u32> = rows.to_vec();
    // Stable sort: ties stay in dataset order, like the trainer's
    // presorted segments.
    seg.sort_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));

    let n = seg.len();
    if col[seg[0] as usize] == col[seg[n - 1] as usize] {
        return None; // constant column
    }

    let nf = n as f64;
    let floor = 1e-12 * total_sd;
    let bound = nf * (total_sd - floor);
    let mut best_w = bound;
    let mut best_threshold = f64::NAN;
    let mut left_sum = 0.0;
    let mut left_sum_sq = 0.0;

    // Admissible thresholds put `i + 1 ∈ [min_leaf, n - min_leaf]`
    // samples on the left.
    let lo = min_leaf.saturating_sub(1);
    let hi = (n - min_leaf).min(n - 1);
    for &i in &seg[..lo] {
        let y = cols.cpi[i as usize];
        left_sum += y;
        left_sum_sq += y * y;
    }
    for i in lo..hi {
        let y = cols.cpi[seg[i] as usize];
        left_sum += y;
        left_sum_sq += y * y;
        let value = col[seg[i] as usize];
        let next_value = col[seg[i + 1] as usize];
        if value == next_value {
            continue; // a threshold must separate distinct values
        }
        let threshold = 0.5 * (value + next_value);
        let right_sum = stats.sum - left_sum;
        let right_sum_sq = stats.sum_sq - left_sum_sq;
        // The division-free criterion: w = n·Σ (|T_i|/|T|)·sd(T_i).
        let scaled_l = ((i + 1) as f64 * left_sum_sq - left_sum * left_sum).max(0.0);
        let scaled_r = ((n - i - 1) as f64 * right_sum_sq - right_sum * right_sum).max(0.0);
        let w = scaled_l.sqrt() + scaled_r.sqrt();
        // Strict `<` keeps the leftmost minimum.
        if w < best_w {
            best_w = w;
            best_threshold = threshold;
        }
    }
    if best_w < bound {
        Some(RefSplit {
            event,
            threshold: best_threshold,
            sdr: total_sd - best_w / nf,
        })
    } else {
        None
    }
}

/// SDR-maximizing split over all attributes in `EventId::ALL` order;
/// strict `>` keeps the earliest attribute on ties.
fn find_best_split(
    cols: &RefColumns,
    rows: &[u32],
    min_leaf: usize,
    stats: &RefStats,
) -> Option<RefSplit> {
    if rows.len() < 2 * min_leaf {
        return None;
    }
    let total_sd = stats.sd();
    if total_sd <= 0.0 {
        return None;
    }
    let mut best: Option<RefSplit> = None;
    for event in EventId::ALL {
        if let Some(candidate) = scan_attribute(cols, rows, event, min_leaf, stats, total_sd) {
            if best.is_none_or(|b| candidate.sdr > b.sdr) {
                best = Some(candidate);
            }
        }
    }
    best
}

/// Straight-line recursive growing.
fn grow(
    cols: &RefColumns,
    rows: Vec<u32>,
    depth: usize,
    sd_stop: f64,
    config: &M5Config,
) -> GrownRef {
    let stats = RefStats::compute(&cols.cpi, &rows);
    let stop = rows.len() < config.min_split || depth >= config.max_depth || stats.sd() < sd_stop;
    if !stop {
        if let Some(split) = find_best_split(cols, &rows, config.min_leaf, &stats) {
            let col = cols.event(split.event);
            let left_rows: Vec<u32> = rows
                .iter()
                .copied()
                .filter(|&i| col[i as usize] <= split.threshold)
                .collect();
            let right_rows: Vec<u32> = rows
                .iter()
                .copied()
                .filter(|&i| col[i as usize] > split.threshold)
                .collect();
            let left = grow(cols, left_rows, depth + 1, sd_stop, config);
            let right = grow(cols, right_rows, depth + 1, sd_stop, config);
            return GrownRef {
                rows,
                stats,
                split: Some((split, Box::new(left), Box::new(right))),
            };
        }
    }
    GrownRef {
        rows,
        stats,
        split: None,
    }
}

/// Textbook bottom-up pruning: fit this node's model over the subtree's
/// attributes and replace the subtree whenever the node's own adjusted
/// error is no worse than the (multiplier-scaled) weighted subtree
/// error.
fn prune(cols: &RefColumns, node: GrownRef, config: &M5Config) -> PrunedRef {
    let n = node.stats.n;
    let mean = node.stats.mean();
    let sd = node.stats.sd();
    match node.split {
        None => {
            let model = LinearModel::constant(mean);
            let error = mean_abs_error(cols, &model, &node.rows)
                * adjusted_error_factor(n, model.n_params());
            PrunedRef {
                model,
                n_samples: n,
                mean_cpi: mean,
                sd_cpi: sd,
                subtree_error: error,
                attrs: Vec::new(),
                split: None,
            }
        }
        Some((split, left, right)) => {
            let left = prune(cols, *left, config);
            let right = prune(cols, *right, config);

            // Attributes available to this node's model: everything the
            // subtree tests or models, in EventId order.
            let mut present = [false; N_EVENTS];
            for e in left.attrs.iter().chain(&right.attrs) {
                present[e.index()] = true;
            }
            present[split.event.index()] = true;
            let candidates: Vec<EventId> = EventId::ALL
                .into_iter()
                .filter(|e| present[e.index()])
                .collect();

            let model = fit_node_model(cols, &node.rows, &candidates, config);
            let node_error = mean_abs_error(cols, &model, &node.rows)
                * adjusted_error_factor(n, model.n_params());
            let subtree_error = if n == 0 {
                0.0
            } else {
                (left.subtree_error * left.n_samples as f64
                    + right.subtree_error * right.n_samples as f64)
                    / n as f64
            };
            let should_prune =
                config.prune && node_error <= subtree_error * config.pruning_multiplier;
            if should_prune {
                let attrs: Vec<EventId> = model.terms().iter().map(|(e, _)| *e).collect();
                PrunedRef {
                    model,
                    n_samples: n,
                    mean_cpi: mean,
                    sd_cpi: sd,
                    subtree_error: node_error,
                    attrs,
                    split: None,
                }
            } else {
                let mut present = present;
                for (e, _) in model.terms() {
                    present[e.index()] = true;
                }
                let attrs: Vec<EventId> = EventId::ALL
                    .into_iter()
                    .filter(|e| present[e.index()])
                    .collect();
                PrunedRef {
                    model,
                    n_samples: n,
                    mean_cpi: mean,
                    sd_cpi: sd,
                    subtree_error,
                    attrs,
                    split: Some((split, Box::new(left), Box::new(right))),
                }
            }
        }
    }
}

/// Converts the pruned structure into [`RefNode`]s, numbering leaves
/// 1-based left to right.
fn finalize(node: PrunedRef, next_lm: &mut usize) -> RefNode {
    match node.split {
        Some((split, left, right)) => {
            let left = finalize(*left, next_lm);
            let right = finalize(*right, next_lm);
            RefNode {
                kind: RefKind::Split {
                    event: split.event,
                    threshold: split.threshold,
                    sdr: split.sdr,
                    left: Box::new(left),
                    right: Box::new(right),
                },
                model: node.model,
                n_samples: node.n_samples,
                mean_cpi: node.mean_cpi,
                sd_cpi: node.sd_cpi,
            }
        }
        None => {
            let lm_index = *next_lm;
            *next_lm += 1;
            RefNode {
                kind: RefKind::Leaf { lm_index },
                model: node.model,
                n_samples: node.n_samples,
                mean_cpi: node.mean_cpi,
                sd_cpi: node.sd_cpi,
            }
        }
    }
}

impl RefTree {
    /// Fits a reference tree, with the same input rejections as the
    /// trainer: empty data, non-finite CPI, non-finite attribute cells.
    pub fn fit(data: &Dataset, config: &M5Config) -> Result<RefTree, String> {
        config.validate().map_err(|e| e.to_string())?;
        if data.is_empty() {
            return Err("empty training set".into());
        }
        let cols = RefColumns::new(data);
        if cols.cpi.iter().any(|y| !y.is_finite()) {
            return Err("non-finite CPI".into());
        }
        for event in EventId::ALL {
            if cols.event(event).iter().any(|v| !v.is_finite()) {
                return Err(format!("non-finite {} cell", event.short_name()));
            }
        }
        let rows: Vec<u32> = (0..data.len() as u32).collect();
        let root_stats = RefStats::compute(&cols.cpi, &rows);
        let root_sd = root_stats.sd();
        let sd_stop = config.sd_fraction * root_sd;
        let n_training = rows.len();
        let grown = grow(&cols, rows, 0, sd_stop, config);
        let pruned = prune(&cols, grown, config);
        let mut next_lm = 1;
        Ok(RefTree {
            root: finalize(pruned, &mut next_lm),
            config: *config,
            n_training,
            root_sd,
        })
    }

    /// The root node.
    pub fn root(&self) -> &RefNode {
        &self.root
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn count(node: &RefNode) -> usize {
            match &node.kind {
                RefKind::Leaf { .. } => 1,
                RefKind::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Textbook prediction: descend to a leaf, then (with smoothing on)
    /// blend back up with `p' = (n·p + k·q) / (n + k)`.
    pub fn predict(&self, sample: &Sample) -> f64 {
        self.predict_with_smoothing(sample, self.config.smoothing)
    }

    /// [`RefTree::predict`] with an explicit smoothing choice — lets the
    /// differential sweep reuse one reference fit across corners that
    /// differ only in smoothing (which does not affect training).
    pub fn predict_with_smoothing(&self, sample: &Sample, smoothing: bool) -> f64 {
        let mut path: Vec<&RefNode> = Vec::new();
        let mut node = &self.root;
        loop {
            path.push(node);
            match &node.kind {
                RefKind::Leaf { .. } => break,
                RefKind::Split {
                    event,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if sample.get(*event) <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
        let mut p = path.last().expect("non-empty path").model.predict(sample);
        if !smoothing || path.len() == 1 {
            return p;
        }
        let k = self.config.smoothing_k;
        for w in path.windows(2).rev() {
            let n = w[1].n_samples as f64;
            let q = w[0].model.predict(sample);
            p = (n * p + k * q) / (n + k);
        }
        p
    }

    /// Verifies the optimized tree is **bit-identical** to this
    /// reference: same structure, same split events, bit-equal
    /// thresholds/statistics, bit-equal model coefficients, same leaf
    /// numbering. Returns a description of the first mismatch.
    pub fn assert_matches(&self, tree: &ModelTree) -> Result<(), String> {
        if tree.n_training() != self.n_training {
            return Err(format!(
                "n_training: {} vs reference {}",
                tree.n_training(),
                self.n_training
            ));
        }
        if tree.root_sd().to_bits() != self.root_sd.to_bits() {
            return Err(format!(
                "root_sd: {} vs reference {}",
                tree.root_sd(),
                self.root_sd
            ));
        }
        compare(tree, tree.root(), &self.root, "root")
    }
}

fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn compare(
    tree: &ModelTree,
    id: modeltree::NodeId,
    reference: &RefNode,
    path: &str,
) -> Result<(), String> {
    let node = tree.node(id);
    if node.n_samples() != reference.n_samples {
        return Err(format!(
            "{path}: n_samples {} vs reference {}",
            node.n_samples(),
            reference.n_samples
        ));
    }
    if !bits_eq(node.mean_cpi(), reference.mean_cpi) {
        return Err(format!(
            "{path}: mean_cpi {} vs reference {}",
            node.mean_cpi(),
            reference.mean_cpi
        ));
    }
    if !bits_eq(node.sd_cpi(), reference.sd_cpi) {
        return Err(format!(
            "{path}: sd_cpi {} vs reference {}",
            node.sd_cpi(),
            reference.sd_cpi
        ));
    }
    let model = node.model();
    if !bits_eq(model.intercept(), reference.model.intercept())
        || model.terms().len() != reference.model.terms().len()
        || model
            .terms()
            .iter()
            .zip(reference.model.terms())
            .any(|(a, b)| a.0 != b.0 || !bits_eq(a.1, b.1))
    {
        return Err(format!(
            "{path}: model {} vs reference {}",
            model, reference.model
        ));
    }
    match (node.kind(), &reference.kind) {
        (NodeKind::Leaf { lm_index }, RefKind::Leaf { lm_index: r }) => {
            if lm_index != r {
                return Err(format!("{path}: lm_index {lm_index} vs reference {r}"));
            }
            Ok(())
        }
        (
            NodeKind::Split {
                event,
                threshold,
                left,
                right,
            },
            RefKind::Split {
                event: re,
                threshold: rt,
                sdr: rsdr,
                left: rl,
                right: rr,
            },
        ) => {
            if event != re {
                return Err(format!(
                    "{path}: split event {} vs reference {}",
                    event.short_name(),
                    re.short_name()
                ));
            }
            if !bits_eq(*threshold, *rt) {
                return Err(format!("{path}: threshold {threshold} vs reference {rt}"));
            }
            if !bits_eq(node.sdr(), *rsdr) {
                return Err(format!("{path}: sdr {} vs reference {}", node.sdr(), rsdr));
            }
            compare(tree, *left, rl, &format!("{path}.L"))?;
            compare(tree, *right, rr, &format!("{path}.R"))
        }
        (NodeKind::Leaf { .. }, RefKind::Split { .. }) => {
            Err(format!("{path}: optimized leaf where reference splits"))
        }
        (NodeKind::Split { .. }, RefKind::Leaf { .. }) => Err(format!(
            "{path}: optimized split where reference has a leaf"
        )),
    }
}
