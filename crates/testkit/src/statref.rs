//! High-precision references for the `spec-stats` machinery.
//!
//! Three independent re-derivations, each using a different method than
//! the production code so agreement is evidence rather than tautology:
//!
//! * [`student_t_two_sided_p`] — the Abramowitz & Stegun 26.7.3/26.7.4
//!   **closed forms** for the Student-t distribution at integer degrees
//!   of freedom (finite trigonometric sums, no incomplete-beta
//!   continued fraction).
//! * [`mann_whitney_exact`] — **exact enumeration** of the Mann–Whitney
//!   U null distribution over all `C(n+m, n)` group assignments of the
//!   pooled sample, with midranks for ties.
//! * [`bootstrap_exact_distribution`] — **exact enumeration** of the
//!   bootstrap statistic distribution over all `n^n` resamples for
//!   small `n`, against which sampled percentile CIs are validated.

/// Two-sided Student-t p-value at integer degrees of freedom via the
/// A&S 26.7.3 (odd ν) / 26.7.4 (even ν) closed forms.
///
/// `A(t|ν)` is the probability that `|T| <= t`; the two-sided p-value
/// is `1 - A(|t|, ν)`.
///
/// # Panics
///
/// Panics if `nu == 0`.
pub fn student_t_two_sided_p(t: f64, nu: u32) -> f64 {
    assert!(nu > 0, "degrees of freedom must be positive");
    if t.is_nan() {
        return f64::NAN;
    }
    if t.is_infinite() {
        return 0.0;
    }
    let t = t.abs();
    let nu_f = f64::from(nu);
    let theta = (t / nu_f.sqrt()).atan();
    let (sin_t, cos_t) = (theta.sin(), theta.cos());
    let cos_sq = cos_t * cos_t;
    // Loop bound as a signed value: for ν = 2 the u32 expression
    // `nu - 3` would wrap around.
    let last = i64::from(nu) - 3;
    let a = if nu == 1 {
        2.0 * theta / std::f64::consts::PI
    } else if nu % 2 == 1 {
        // A&S 26.7.3: A = (2/π)(θ + sinθ [cosθ + (2/3)cos³θ + ... +
        // ((2·4···(ν−3))/(1·3···(ν−2))) cos^{ν−2}θ]).
        let mut term = cos_t;
        let mut sum = term;
        let mut k = 2i64;
        while k <= last {
            term *= k as f64 / (k + 1) as f64 * cos_sq;
            sum += term;
            k += 2;
        }
        2.0 / std::f64::consts::PI * (theta + sin_t * sum)
    } else {
        // A&S 26.7.4: A = sinθ [1 + (1/2)cos²θ + (1·3/(2·4))cos⁴θ + ...
        // + ((1·3···(ν−3))/(2·4···(ν−2))) cos^{ν−2}θ].
        let mut term = 1.0;
        let mut sum = term;
        let mut k = 1i64;
        while k <= last {
            term *= k as f64 / (k + 1) as f64 * cos_sq;
            sum += term;
            k += 2;
        }
        sin_t * sum
    };
    (1.0 - a).clamp(0.0, 1.0)
}

/// The exact Mann–Whitney verdict for an observed pair of samples.
pub struct ExactMannWhitney {
    /// Observed U statistic of the first sample (midranks for ties).
    pub u: f64,
    /// Exact two-sided p-value: `P(|U - μ| >= |u_obs - μ|)` under the
    /// null that every assignment of pooled values to groups is equally
    /// likely, with `μ = n·m/2`.
    pub p_two_sided: f64,
}

/// Exactly enumerates the Mann–Whitney U null distribution over all
/// `C(n+m, n)` ways of assigning the pooled observations to the first
/// group, honoring ties through midranks.
///
/// Exponential in `n + m` — intended for the small-sample oracle only.
///
/// # Panics
///
/// Panics if either sample is empty or the pooled size exceeds 20.
pub fn mann_whitney_exact(a: &[f64], b: &[f64]) -> ExactMannWhitney {
    let (na, nb) = (a.len(), b.len());
    assert!(na > 0 && nb > 0, "samples must be non-empty");
    let n = na + nb;
    assert!(n <= 20, "exact enumeration is for small pooled samples");

    // Midranks of the pooled, sorted values.
    let pooled: Vec<f64> = a.iter().chain(b).copied().collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| pooled[x].total_cmp(&pooled[y]));
    let sorted: Vec<f64> = order.iter().map(|&i| pooled[i]).collect();
    let mut midrank = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let r = (i + j) as f64 / 2.0 + 1.0;
        for item in midrank.iter_mut().take(j + 1).skip(i) {
            *item = r;
        }
        i = j + 1;
    }
    // midrank[k] is the rank of sorted position k; map back to pooled
    // positions.
    let mut rank_of = vec![0.0; n];
    for (pos, &orig) in order.iter().enumerate() {
        rank_of[orig] = midrank[pos];
    }

    let rank_sum_a: f64 = rank_of[..na].iter().sum();
    let u_obs = rank_sum_a - (na * (na + 1)) as f64 / 2.0;
    let mu = (na * nb) as f64 / 2.0;
    let dev_obs = (u_obs - mu).abs();

    // Enumerate every n-choose-na assignment via bitmasks.
    let mut total = 0u64;
    let mut extreme = 0u64;
    let eps = 1e-9;
    for mask in 0u32..(1u32 << n) {
        if mask.count_ones() as usize != na {
            continue;
        }
        total += 1;
        let mut rs = 0.0;
        for (k, &r) in rank_of.iter().enumerate() {
            if mask & (1 << k) != 0 {
                rs += r;
            }
        }
        let u = rs - (na * (na + 1)) as f64 / 2.0;
        if (u - mu).abs() >= dev_obs - eps {
            extreme += 1;
        }
    }
    ExactMannWhitney {
        u: u_obs,
        p_two_sided: extreme as f64 / total as f64,
    }
}

/// Exactly enumerates the bootstrap distribution of `statistic` over
/// all `n^n` with-replacement resamples of the paired data, returning
/// the sorted atoms (each resample contributing equal probability
/// `n^{-n}`).
///
/// # Panics
///
/// Panics if the slices differ in length or `n` is 0 or above 7.
pub fn bootstrap_exact_distribution<F>(predicted: &[f64], actual: &[f64], statistic: F) -> Vec<f64>
where
    F: Fn(&[f64], &[f64]) -> f64,
{
    let n = predicted.len();
    assert_eq!(n, actual.len(), "paired slices must match");
    assert!(n > 0 && n <= 7, "exact enumeration is for tiny n");
    let total = n.pow(n as u32);
    let mut atoms = Vec::with_capacity(total);
    let mut p_buf = vec![0.0; n];
    let mut a_buf = vec![0.0; n];
    for code in 0..total {
        let mut c = code;
        for slot in 0..n {
            let pick = c % n;
            c /= n;
            p_buf[slot] = predicted[pick];
            a_buf[slot] = actual[pick];
        }
        atoms.push(statistic(&p_buf, &a_buf));
    }
    atoms.sort_by(f64::total_cmp);
    atoms
}

/// Exact CDF value `P(X <= x)` of a sorted atom list.
pub fn atom_cdf(sorted_atoms: &[f64], x: f64) -> f64 {
    let count = sorted_atoms.iter().filter(|&&a| a <= x).count();
    count as f64 / sorted_atoms.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_closed_form_matches_known_values() {
        // Classic table values: t=2.228, ν=10 → two-sided p = 0.05.
        assert!((student_t_two_sided_p(2.228, 10) - 0.05).abs() < 2e-4);
        // t=12.706, ν=1 → p = 0.05.
        assert!((student_t_two_sided_p(12.706, 1) - 0.05).abs() < 2e-5);
        // t=2.776, ν=4 → p = 0.05.
        assert!((student_t_two_sided_p(2.776, 4) - 0.05).abs() < 2e-4);
        // t=0 → p = 1 exactly; t→∞ → p → 0.
        assert_eq!(student_t_two_sided_p(0.0, 7), 1.0);
        assert_eq!(student_t_two_sided_p(f64::INFINITY, 7), 0.0);
        // Symmetry in the sign of t.
        assert_eq!(
            student_t_two_sided_p(-1.7, 9),
            student_t_two_sided_p(1.7, 9)
        );
    }

    #[test]
    fn mann_whitney_exact_on_disjoint_samples() {
        // Complete separation of 4 vs 4: U = 16 (maximal), and only the
        // two perfectly-separated assignments are as extreme:
        // p = 2 / C(8,4) = 2/70.
        let r = mann_whitney_exact(&[1.0, 2.0, 3.0, 4.0], &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(r.u, 0.0);
        assert!((r.p_two_sided - 2.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_enumeration_covers_every_resample() {
        let xs = [1.0, 2.0, 3.0];
        let atoms = bootstrap_exact_distribution(&xs, &xs, |p, _| p.iter().sum::<f64>());
        assert_eq!(atoms.len(), 27);
        // Minimum resample is all-1s, maximum all-3s.
        assert_eq!(atoms[0], 3.0);
        assert_eq!(atoms[26], 9.0);
        assert!((atom_cdf(&atoms, 3.0) - 1.0 / 27.0).abs() < 1e-12);
    }
}
