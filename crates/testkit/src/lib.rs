//! Verification harness for the SPEC characterization reproduction.
//!
//! Four layers of defense against silent regressions in the optimized
//! training and analysis pipeline:
//!
//! * [`reference`] — a naive, obviously-correct M5' implementation used
//!   as a **differential oracle**: the optimized trainer must produce
//!   bit-identical trees across the full configuration lattice.
//! * [`generators`] — seeded dataset generators, including adversarial
//!   shapes (NaN/inf cells, near-tied thresholds, all-equal targets,
//!   single-row leaves), powering the differential and **metamorphic**
//!   suites.
//! * [`statref`] — high-precision closed-form and exact-enumeration
//!   references for the `spec-stats` t-tests, Mann–Whitney U, and
//!   bootstrap confidence intervals.
//! * [`golden`] — a byte-for-byte golden-snapshot framework for the
//!   E2–E8 `results/` artifacts, with a `TESTKIT_BLESS=1` regeneration
//!   path.
//!
//! # Depth control
//!
//! The suites run in **smoke mode** by default (sized for CI on every
//! push). Setting `TESTKIT_FULL=1` deepens the differential and
//! metamorphic sweeps for scheduled or manually-dispatched runs.

pub mod generators;
pub mod golden;
pub mod reference;
pub mod statref;

use modeltree::{M5Config, ModelTree, NodeKind};
use perfcounters::events::EventId;

/// True when `TESTKIT_FULL=1` requests full-depth verification.
pub fn full_depth() -> bool {
    std::env::var("TESTKIT_FULL").is_ok_and(|v| v == "1")
}

/// Number of generated datasets the differential sweep covers.
pub fn n_differential_datasets() -> usize {
    if full_depth() {
        300
    } else {
        100
    }
}

/// One corner of the configuration lattice.
pub struct Corner {
    /// Human-readable corner tag for failure messages.
    pub name: String,
    /// The trainer configuration at this corner.
    pub config: M5Config,
}

/// The differential sweep's configuration lattice: smoothing on/off ×
/// pruning {off, 1.0, 2.5} × min-leaf {1, 4, 9}, plus a band with
/// attribute elimination disabled — 24 corners. Thread counts cycle
/// through {1, 2, 8} so every corner also exercises a parallel
/// schedule against the serial reference.
pub fn corner_lattice() -> Vec<Corner> {
    let mut corners = Vec::new();
    let prunes = [(false, 1.0), (true, 1.0), (true, 2.5)];
    for smoothing in [false, true] {
        for &(prune, multiplier) in &prunes {
            for min_leaf in [1usize, 4, 9] {
                corners.push((smoothing, prune, multiplier, min_leaf, true));
            }
        }
    }
    // Elimination-off band at the default leaf size.
    for smoothing in [false, true] {
        for &(prune, multiplier) in &prunes {
            corners.push((smoothing, prune, multiplier, 4, false));
        }
    }
    let threads = [1usize, 2, 8];
    corners
        .into_iter()
        .enumerate()
        .map(|(i, (smoothing, prune, multiplier, min_leaf, elim))| {
            let n_threads = threads[i % threads.len()];
            let config = M5Config::default()
                .with_min_leaf(min_leaf)
                .with_smoothing(smoothing)
                .with_prune(prune)
                .with_pruning_multiplier(multiplier)
                .with_attribute_elimination(elim)
                .with_n_threads(n_threads);
            Corner {
                name: format!(
                    "smooth={} prune={}x{} min_leaf={} elim={} threads={}",
                    smoothing, prune, multiplier, min_leaf, elim, n_threads
                ),
                config,
            }
        })
        .collect()
}

/// Key identifying which corners share a *trained* tree: smoothing and
/// thread count do not affect training, so corners differing only in
/// those reuse one reference fit.
pub fn training_key(config: &M5Config) -> (bool, u64, usize, bool) {
    (
        config.prune,
        config.pruning_multiplier.to_bits(),
        config.min_leaf,
        config.attribute_elimination,
    )
}

/// A structure-only signature of a tree: pre-order list of split
/// `(event, threshold bits)` entries and leaf markers. Two trees with
/// equal signatures test the same attributes against bit-equal
/// thresholds in the same shape, regardless of node statistics or leaf
/// models.
pub fn split_signature(tree: &ModelTree) -> Vec<Option<(EventId, u64)>> {
    fn walk(tree: &ModelTree, id: modeltree::NodeId, out: &mut Vec<Option<(EventId, u64)>>) {
        match *tree.node(id).kind() {
            NodeKind::Leaf { .. } => out.push(None),
            NodeKind::Split {
                event,
                threshold,
                left,
                right,
            } => {
                out.push(Some((event, threshold.to_bits())));
                walk(tree, left, out);
                walk(tree, right, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(tree, tree.root(), &mut out);
    out
}

/// Asserts `|a - b| <= tol * max(1, |a|, |b|)` — relative tolerance
/// with an absolute floor — returning a description on failure.
pub fn close_to(a: f64, b: f64, tol: f64) -> Result<(), String> {
    let scale = 1.0f64.max(a.abs()).max(b.abs());
    if (a - b).abs() <= tol * scale {
        Ok(())
    } else {
        Err(format!("{a} vs {b} (tol {tol}, scale {scale})"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_has_at_least_sixteen_distinct_corners() {
        let corners = corner_lattice();
        assert!(corners.len() >= 16, "only {} corners", corners.len());
        let mut seen = std::collections::BTreeSet::new();
        for c in &corners {
            assert!(c.config.validate().is_ok(), "invalid corner {}", c.name);
            seen.insert(c.name.clone());
        }
        assert_eq!(seen.len(), corners.len(), "duplicate corner names");
        // All three thread counts appear.
        for t in [1, 2, 8] {
            assert!(corners.iter().any(|c| c.config.n_threads == t));
        }
    }

    #[test]
    fn training_key_ignores_smoothing_and_threads() {
        let a = M5Config::default().with_smoothing(true).with_n_threads(8);
        let b = M5Config::default().with_smoothing(false).with_n_threads(1);
        assert_eq!(training_key(&a), training_key(&b));
    }
}
