//! End-to-end verification of the prediction server (`crates/serve`).
//!
//! The serving determinism contract: a prediction fetched over HTTP is
//! **byte-identical** to the offline `predict_batch` result for the
//! same model and row — across text and JSON bodies, across batch
//! compositions chosen by the coalescer, and across concurrent hot
//! swaps (a request is served entirely by the model version it captured
//! at submit; the `X-Model-Version` header pins which one that was).
//! Plus the failure-path hardening: bounded-queue backpressure answers
//! 429 and recovers, and no malformed byte stream kills a worker.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use modeltree::{M5Config, ModelTree};
use perfcounters::events::N_EVENTS;
use perfcounters::{Dataset, EventId, Sample};
use pipeline::{ArtifactStore, Fingerprint};
use serve::{CoalescerConfig, LoadgenConfig, Mode, ModelRegistry, Server, ServerConfig};

/// A two-regime synthetic workload; `flip` swaps the regimes so the two
/// fitted trees are materially different models.
fn synth_dataset(n: usize, flip: bool) -> Dataset {
    let mut ds = Dataset::new();
    let b = ds.add_benchmark("synth");
    for i in 0..n {
        let phase = (i % 97) as f64 / 97.0;
        let dtlb = 4e-4 * phase;
        let load = 0.05 + 0.4 * ((i % 31) as f64 / 31.0);
        let l2 = 1e-3 * ((i % 13) as f64 / 13.0);
        let slow = (dtlb > 2e-4) ^ flip;
        let cpi = if slow {
            1.1 + 900.0 * l2 + 0.2 * load
        } else {
            0.5 + 400.0 * dtlb + 1.5 * load
        };
        let mut s = Sample::zeros(cpi);
        s.set(EventId::DtlbMiss, dtlb);
        s.set(EventId::Load, load);
        s.set(EventId::L2Miss, l2);
        ds.push(s, b);
    }
    ds
}

fn fit(ds: &Dataset) -> ModelTree {
    ModelTree::fit(ds, &M5Config::default()).expect("fit succeeds")
}

/// One HTTP exchange on a fresh connection.
fn exchange(addr: &str, raw: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("write request");
    read_responses(&mut stream, 1).remove(0)
}

/// Reads `n` pipelined responses off one connection.
fn read_responses(
    stream: &mut TcpStream,
    n: usize,
) -> Vec<(u16, HashMap<String, String>, Vec<u8>)> {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let mut buf = Vec::new();
    let mut out = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    while out.len() < n {
        loop {
            if let Some((response, used)) = try_parse_response(&buf) {
                buf.drain(..used);
                out.push(response);
                if out.len() == n {
                    break;
                }
                continue;
            }
            match stream.read(&mut chunk) {
                Ok(0) => panic!("peer closed after {} of {n} responses", out.len()),
                Ok(read) => buf.extend_from_slice(&chunk[..read]),
                Err(e) => panic!("read failed after {} of {n} responses: {e}", out.len()),
            }
        }
    }
    out
}

#[allow(clippy::type_complexity)]
fn try_parse_response(buf: &[u8]) -> Option<((u16, HashMap<String, String>, Vec<u8>), usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end - 4]).expect("UTF-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut headers = HashMap::new();
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let length: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .expect("content-length");
    let total = head_end + length;
    if buf.len() < total {
        return None;
    }
    Some(((status, headers, buf[head_end..total].to_vec()), total))
}

fn post(path: &str, headers: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n{headers}\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn dense_line(row: &[f64]) -> String {
    row.iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

#[test]
fn served_predictions_byte_identical_to_offline() {
    let ds = synth_dataset(600, false);
    let tree = fit(&ds);
    let offline_pred = tree.compile().predict_batch(&ds);
    let offline_cls = tree.compile().classify_batch(&ds);

    let registry = Arc::new(ModelRegistry::new());
    registry.register_tree("cpu2006", &tree);
    let server = Server::start(Arc::clone(&registry), ServerConfig::default()).expect("start");
    let addr = server.addr().to_string();

    // Text-mode predict, several pipelined multi-row requests on one
    // connection (exercising the coalescer's grouping + scatter).
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut raw = Vec::new();
    let per_request = 37; // deliberately not a divisor of 600
    let mut expected_chunks = Vec::new();
    for (start, chunk) in offline_pred
        .chunks(per_request)
        .enumerate()
        .map(|(i, c)| (i * per_request, c))
    {
        let body: String = (start..start + chunk.len())
            .map(|i| {
                let mut line = dense_line(ds.sample(i).densities());
                line.push('\n');
                line
            })
            .collect();
        raw.extend_from_slice(&post("/predict", "Content-Type: text/plain\r\n", &body));
        expected_chunks.push(chunk);
    }
    stream.write_all(&raw).expect("write pipelined requests");
    let responses = read_responses(&mut stream, expected_chunks.len());
    for (response, expect) in responses.iter().zip(&expected_chunks) {
        let (status, headers, body) = response;
        assert_eq!(*status, 200);
        assert!(headers.contains_key("x-model-version"));
        let got: Vec<f64> = std::str::from_utf8(body)
            .unwrap()
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(expect.iter()) {
            assert_eq!(g.to_bits(), e.to_bits(), "served f64 differs from offline");
        }
    }

    // JSON-mode predict round-trips bit-identically too.
    let json_rows: Vec<String> = (0..16)
        .map(|i| {
            let cells: Vec<String> = ds
                .sample(i)
                .densities()
                .iter()
                .map(|v| format!("{v}"))
                .collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    let body = format!(
        "{{\"model\":\"cpu2006\",\"rows\":[{}]}}",
        json_rows.join(",")
    );
    let (status, _, body) = exchange(
        &addr,
        &post("/predict", "Content-Type: application/json\r\n", &body),
    );
    assert_eq!(status, 200);
    let value: serde_json::Value = serde_json::from_slice(&body).unwrap();
    let Some(serde_json::Value::Array(preds)) = value.get("predictions") else {
        panic!("missing predictions array");
    };
    for (i, p) in preds.iter().enumerate() {
        assert_eq!(
            p.as_f64().unwrap().to_bits(),
            offline_pred[i].to_bits(),
            "JSON prediction {i} differs"
        );
    }

    // Classify: 1-based linear-model numbers, identical to offline.
    let body: String = (0..64)
        .map(|i| {
            let mut line = dense_line(ds.sample(i).densities());
            line.push('\n');
            line
        })
        .collect();
    let (status, _, body) = exchange(&addr, &post("/classify", "X-Model: cpu2006\r\n", &body));
    assert_eq!(status, 200);
    let got: Vec<u32> = std::str::from_utf8(&body)
        .unwrap()
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(&got[..], &offline_cls[..64]);

    server.shutdown();
}

#[test]
fn hot_swap_under_load_zero_failures_and_per_version_identity() {
    let ds = synth_dataset(400, false);
    let tree_a = fit(&synth_dataset(500, false));
    let tree_b = fit(&synth_dataset(500, true));
    let key_a = Fingerprint(0xaaaa_aaaa_aaaa_aaaa);
    let key_b = Fingerprint(0xbbbb_bbbb_bbbb_bbbb);

    let dir = std::env::temp_dir().join(format!("serve-e2e-swap-{}", std::process::id()));
    let store = ArtifactStore::open(&dir);
    store.store_tree(key_a, &tree_a).unwrap();
    store.store_tree(key_b, &tree_b).unwrap();

    // Per-version oracle: offline predictions for the probe rows.
    let mut oracle: HashMap<String, Vec<f64>> = HashMap::new();
    oracle.insert(key_a.to_hex(), tree_a.compile().predict_batch(&ds));
    oracle.insert(key_b.to_hex(), tree_b.compile().predict_batch(&ds));

    let registry = Arc::new(ModelRegistry::new());
    registry
        .load_from_store(&store, "cpu2006", key_a)
        .expect("initial load");
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            store: Some(ArtifactStore::open(&dir)),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr().to_string();

    let n_clients = 4;
    let requests_per_client = 120;
    let failures = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for c in 0..n_clients {
            let addr = addr.clone();
            let oracle = &oracle;
            let ds = &ds;
            workers.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(&addr).expect("connect");
                let mut failures = 0usize;
                for r in 0..requests_per_client {
                    let row = (c * 131 + r * 7) % ds.len();
                    let mut line = dense_line(ds.sample(row).densities());
                    line.push('\n');
                    let raw = post("/predict", "Content-Type: text/plain\r\n", &line);
                    stream.write_all(&raw).expect("write");
                    let (status, headers, body) = read_responses(&mut stream, 1).remove(0);
                    if status != 200 {
                        failures += 1;
                        continue;
                    }
                    let version = headers.get("x-model-version").expect("version header");
                    let expected = oracle.get(version).expect("known version")[row];
                    let got: f64 = std::str::from_utf8(&body).unwrap().trim().parse().unwrap();
                    assert_eq!(
                        got.to_bits(),
                        expected.to_bits(),
                        "row {row} served by version {version} diverged from that version's offline bits"
                    );
                }
                failures
            }));
        }
        // Swap back and forth while the clients hammer.
        let swapper = scope.spawn(|| {
            let mut swap_failures = 0usize;
            for round in 0..6 {
                std::thread::sleep(Duration::from_millis(15));
                let key = if round % 2 == 0 { key_b } else { key_a };
                let body = format!("{{\"model\":\"cpu2006\",\"key\":\"{}\"}}", key.to_hex());
                let (status, _, _) = exchange(
                    &addr,
                    &post("/swap", "Content-Type: application/json\r\n", &body),
                );
                if status != 200 {
                    swap_failures += 1;
                }
            }
            swap_failures
        });
        let mut failures = swapper.join().unwrap();
        for w in workers {
            failures += w.join().unwrap();
        }
        failures
    });
    assert_eq!(failures, 0, "hot swap must not fail a single request");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backpressure_answers_429_and_recovers() {
    let tree = fit(&synth_dataset(400, false));
    let registry = Arc::new(ModelRegistry::new());
    registry.register_tree("cpu2006", &tree);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            coalescer: CoalescerConfig {
                // A long window and a queue bound of 4 rows: the first
                // 4-row request parks for the full window, the
                // pipelined second request must bounce.
                window: Duration::from_millis(150),
                max_batch_rows: 1 << 20,
                queue_rows: 4,
            },
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr().to_string();

    let ds = synth_dataset(8, false);
    let four: String = (0..4)
        .map(|i| {
            let mut l = dense_line(ds.sample(i).densities());
            l.push('\n');
            l
        })
        .collect();
    let one = {
        let mut l = dense_line(ds.sample(5).densities());
        l.push('\n');
        l
    };
    let mut raw = post("/predict", "", &four);
    raw.extend_from_slice(&post("/predict", "", &one));
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.write_all(&raw).expect("write burst");
    let responses = read_responses(&mut stream, 2);
    assert_eq!(responses[0].0, 200, "queued request completes");
    assert_eq!(responses[1].0, 429, "over-quota request is shed");
    assert_eq!(
        responses[1].1.get("retry-after").map(String::as_str),
        Some("1"),
        "429 carries Retry-After"
    );

    // After the queue drains, the same request is admitted again.
    let (status, _, _) = exchange(&addr, &post("/predict", "", &one));
    assert_eq!(status, 200, "backpressure recovers after drain");

    server.shutdown();
}

#[test]
fn malformed_inputs_harden_but_do_not_kill_workers() {
    let tree = fit(&synth_dataset(400, false));
    let registry = Arc::new(ModelRegistry::new());
    registry.register_tree("cpu2006", &tree);
    let server = Server::start(Arc::clone(&registry), ServerConfig::default()).expect("start");
    let addr = server.addr().to_string();

    let good_line = {
        let mut l = dense_line(synth_dataset(2, false).sample(1).densities());
        l.push('\n');
        l
    };

    // (raw request bytes, expected status)
    let cases: Vec<(Vec<u8>, u16)> = vec![
        // Binary garbage instead of HTTP.
        (b"\x00\xff\x13\x37 garbage\r\n\r\n".to_vec(), 400),
        // Lowercase method token.
        (b"post /predict HTTP/1.1\r\n\r\n".to_vec(), 400),
        // Unsupported HTTP version.
        (b"GET /healthz HTTP/2.0\r\n\r\n".to_vec(), 400),
        // Oversized declared body: rejected before the bytes arrive.
        (
            format!(
                "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                64 << 20
            )
            .into_bytes(),
            413,
        ),
        // Head that never terminates within the window.
        (vec![b'A'; 9 * 1024], 431),
        // Unparseable float.
        (
            post(
                "/predict",
                "",
                "1,2,three,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19\n",
            ),
            400,
        ),
        // Wrong column count.
        (post("/predict", "", "1,2,3\n"), 400),
        // Sparse index out of range.
        (post("/predict", "", "99:1.0\n"), 400),
        // Empty body.
        (post("/predict", "", ""), 400),
        // Unknown model.
        (post("/predict", "X-Model: nope\r\n", &good_line), 404),
        // Unknown endpoint and wrong method.
        (b"GET /nope HTTP/1.1\r\n\r\n".to_vec(), 404),
        (b"GET /predict HTTP/1.1\r\n\r\n".to_vec(), 405),
        (post("/healthz", "", "x"), 405),
        // Broken JSON body.
        (
            post(
                "/predict",
                "Content-Type: application/json\r\n",
                "{\"rows\": [[1,2",
            ),
            400,
        ),
        // JSON row of the wrong width.
        (
            post(
                "/predict",
                "Content-Type: application/json\r\n",
                "{\"rows\": [[1,2,3]]}",
            ),
            400,
        ),
        // Swap without a store configured.
        (
            post(
                "/swap",
                "Content-Type: application/json\r\n",
                "{\"model\":\"m\",\"key\":\"ff\"}",
            ),
            503,
        ),
    ];
    for (raw, expect) in &cases {
        let (status, _, body) = exchange(&addr, raw);
        assert_eq!(
            status,
            *expect,
            "case {:?} => {}",
            String::from_utf8_lossy(&raw[..raw.len().min(48)]),
            String::from_utf8_lossy(&body)
        );
    }

    // Non-finite features: 4xx carrying the engine's own error text.
    for bad in ["inf", "-inf", "NaN"] {
        let line = format!("{bad},{}\n", dense_line(&[0.1; N_EVENTS - 1]));
        let (status, _, body) = exchange(&addr, &post("/predict", "", &line));
        assert_eq!(status, 400, "non-finite {bad} must be a 400");
        let text = String::from_utf8(body).unwrap();
        assert!(
            text.contains("non-finite attribute"),
            "body should reuse TreeError::NonFiniteAttribute, got {text:?}"
        );
    }

    // A truncated request followed by a dead connection must not wedge
    // anything.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(b"POST /predict HTTP/1.1\r\nContent-Le")
            .expect("write");
        drop(stream);
    }

    // After all of the abuse, the server still serves.
    let (status, _, _) = exchange(&addr, &post("/predict", "", &good_line));
    assert_eq!(status, 200, "workers survived the malformed barrage");
    let (status, _, body) = exchange(&addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    server.shutdown();
}

#[test]
fn healthz_versions_metrics_negotiation_and_flight_endpoint() {
    let tree = fit(&synth_dataset(400, false));
    let registry = Arc::new(ModelRegistry::new());
    let version = registry.register_tree("cpu2006", &tree);
    let server = Server::start(Arc::clone(&registry), ServerConfig::default()).expect("start");
    let addr = server.addr().to_string();

    // /healthz: liveness body stays exactly "ok\n" with the default
    // (empty) monitor set; the headers carry the operational headline.
    let (status, headers, body) = exchange(&addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));
    assert_eq!(
        headers.get("x-models").map(String::as_str),
        Some(format!("cpu2006@{}", version.version).as_str()),
        "X-Models must carry name@version fingerprints"
    );
    assert_eq!(
        headers.get("x-monitors-firing").map(String::as_str),
        Some("0")
    );

    // /metrics default: the JSON document, byte-compatible keys.
    let (status, headers, body) = exchange(&addr, b"GET /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("application/json")
    );
    let doc: serde_json::Value = serde_json::from_slice(&body).expect("valid JSON");
    assert!(doc.get("counters").is_some());
    assert!(doc
        .get("obs")
        .and_then(|o| o.get("schema_version"))
        .is_some());

    // ?format=prom and an openmetrics Accept both negotiate the text
    // exposition; ?format=json pins JSON even with that Accept.
    for raw in [
        b"GET /metrics?format=prom HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /metrics HTTP/1.1\r\nAccept: application/openmetrics-text\r\n\r\n".to_vec(),
    ] {
        let (status, headers, body) = exchange(&addr, &raw);
        assert_eq!(status, 200);
        assert_eq!(
            headers.get("content-type").map(String::as_str),
            Some(obskit::prom::CONTENT_TYPE)
        );
        let text = String::from_utf8(body).expect("UTF-8 exposition");
        assert!(text.starts_with("# TYPE "), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
    }
    let (status, headers, _) = exchange(
        &addr,
        b"GET /metrics?format=json HTTP/1.1\r\nAccept: application/openmetrics-text\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("application/json")
    );

    // POST /debug/flight dumps the recorder ring; GET is a 405.
    let (status, headers, body) = exchange(&addr, &post("/debug/flight", "", ""));
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("application/json")
    );
    let dump: serde_json::Value = serde_json::from_slice(&body).expect("valid dump JSON");
    assert!(matches!(
        dump.get("events"),
        Some(serde_json::Value::Array(_))
    ));
    let (status, _, _) = exchange(&addr, b"GET /debug/flight HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405);

    server.shutdown();
}

/// The tracing acceptance test: one Chrome-trace export reconstructs a
/// single request's whole path — parse, queue wait, batch membership,
/// engine call, respond — by the request id the server echoed in
/// `X-Request-Id`.
#[test]
fn traced_request_lifecycle_reconstructable_from_one_chrome_trace() {
    let tree = fit(&synth_dataset(500, false));
    let registry = Arc::new(ModelRegistry::new());
    registry.register_tree("cpu2006", &tree);
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            coalescer: CoalescerConfig {
                window: Duration::from_micros(100),
                ..CoalescerConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr().to_string();

    obskit::set_enabled(true, true);
    obskit::set_ring_enabled(true);
    serve::set_trace_sample(1);
    let row = synth_dataset(1, false).sample(0).densities().to_vec();
    let (status, headers, _) = exchange(&addr, &post("/predict", "", &dense_line(&row)));
    obskit::set_enabled(false, false);
    obskit::set_ring_enabled(false);

    assert_eq!(status, 200);
    let req_id = headers
        .get("x-request-id")
        .expect("sampled request echoes X-Request-Id")
        .clone();

    // One trace export; every lifecycle stage is findable by req_id.
    let trace = obskit::export::trace_json();
    let doc: serde_json::Value = serde_json::from_str(&trace).expect("valid trace JSON");
    let Some(serde_json::Value::Array(events)) = doc.get("traceEvents") else {
        panic!("trace has no traceEvents array");
    };
    let arg = |event: &serde_json::Value, key: &str| -> Option<String> {
        event
            .get("args")
            .and_then(|a| a.get(key))
            .and_then(serde_json::Value::as_str)
            .map(str::to_string)
    };
    let names_with_id: Vec<String> = events
        .iter()
        .filter(|e| arg(e, "req_id").as_deref() == Some(req_id.as_str()))
        .filter_map(|e| e.get("name").and_then(serde_json::Value::as_str))
        .map(str::to_string)
        .collect();
    for stage in [
        "serve.parse",
        "serve.queue_wait",
        "serve.respond",
        "serve.request",
    ] {
        assert!(
            names_with_id.iter().any(|n| n == stage),
            "stage {stage} not found for request {req_id}; got {names_with_id:?}"
        );
    }
    // Batch membership: the engine and batch spans list the request in
    // their req_ids roster.
    for stage in ["serve.engine", "serve.batch"] {
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(serde_json::Value::as_str) == Some(stage)
                    && arg(e, "req_ids").is_some_and(|ids| ids.split(',').any(|id| id == req_id))
            }),
            "stage {stage} does not roster request {req_id}"
        );
    }

    // The flight recorder saw the same request enter and resolve.
    let id: u64 = req_id.parse().expect("numeric request id");
    let (ring_events, _) = obskit::ring::snapshot_events();
    let kinds: Vec<obskit::ring::FlightKind> = ring_events
        .iter()
        .filter(|e| e.a == id)
        .map(|e| e.kind)
        .collect();
    assert!(
        kinds.contains(&obskit::ring::FlightKind::RequestSubmitted),
        "{kinds:?}"
    );
    assert!(
        kinds.contains(&obskit::ring::FlightKind::RequestResolved),
        "{kinds:?}"
    );

    server.shutdown();
}

#[test]
fn loadgen_round_trip_and_shutdown() {
    let tree = fit(&synth_dataset(400, false));
    let registry = Arc::new(ModelRegistry::new());
    registry.register_tree("cpu2006", &tree);
    let server = Server::start(Arc::clone(&registry), ServerConfig::default()).expect("start");
    let addr = server.addr().to_string();

    let ds = synth_dataset(32, false);
    let rows: Vec<Vec<f64>> = (0..ds.len())
        .map(|i| ds.sample(i).densities().to_vec())
        .collect();
    let report = serve::loadgen::run(
        &LoadgenConfig {
            addr: addr.clone(),
            connections: 2,
            total_requests: 400,
            classify_fraction: 0.25,
            mode: Mode::Saturate { inflight: 16 },
        },
        &rows,
    )
    .expect("loadgen runs");
    assert_eq!(
        report.ok, 400,
        "every smoke request answers 2xx: {report:?}"
    );
    assert_eq!(report.failed, 0);
    assert!(report.p99_us >= report.p50_us);

    // Shutdown over HTTP: acknowledged, then the server drains.
    let (status, _, _) = exchange(&addr, &post("/shutdown", "", ""));
    assert_eq!(status, 200);
    server.join();
}
