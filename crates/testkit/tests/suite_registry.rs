//! Suite-registry fingerprint stability.
//!
//! The generation-parameterized registry refactor replaced the closed
//! two-variant `SuiteKind` enum with registry-backed suite handles. The
//! compatibility contract is that every **legacy** cache key is
//! byte-identical to its pre-refactor value — otherwise a warm artifact
//! store silently goes cold and every golden regenerates from different
//! artifacts. The hex constants below were captured from the
//! pre-refactor fingerprint code and must never change.
//!
//! New (post-refactor) suites are keyed by a content fingerprint over
//! their `SuiteDef` instead of a frozen token, so their keys must be a
//! pure function of the definition — invariant to registry insertion
//! order and to everything else about the process.

use pipeline::{
    suite_def_fingerprint, DatasetSpec, SplitPart, SplitSpec, SuiteKind, TransferPart,
    TransferSplitSpec, TreeSpec, SEED_CPU2006, SEED_SPLIT,
};

fn hex(fp: pipeline::Fingerprint) -> String {
    format!("{:032x}", fp.0)
}

/// Every legacy cache key, byte-identical to the pre-refactor enum
/// implementation. A failure here means warm stores and all E2–E7
/// goldens are invalidated.
#[test]
fn legacy_fingerprints_are_bit_stable() {
    let cpu = DatasetSpec::cpu2006();
    let omp = DatasetSpec::omp2001();
    assert_eq!(hex(cpu.fingerprint()), "794bc80c59da7dc06e98d73eac68d1fb");
    assert_eq!(hex(omp.fingerprint()), "3134a5c94f771dcca2be081b46ac1e63");

    let member = DatasetSpec::new(SuiteKind::cpu2006(), 4_000, SEED_CPU2006 ^ 0xbe9c)
        .with_benchmark("429.mcf");
    assert_eq!(
        hex(member.fingerprint()),
        "0728f55b85f610ee0791496477467f03"
    );

    let mem = DatasetSpec::omp2001().with_memory_pressure(1.5);
    assert_eq!(hex(mem.fingerprint()), "ac91d216330e5592acecfbcce8f1de11");

    let split = SplitSpec::new(DatasetSpec::cpu2006(), SEED_SPLIT, 0.5);
    assert_eq!(
        hex(split.part_fingerprint(SplitPart::First)),
        "702475857d0248aaf47d18c90f226ed9"
    );

    let transfer = TransferSplitSpec::canonical();
    assert_eq!(
        hex(transfer.part_fingerprint(TransferPart::CpuTrain)),
        "b065dc8134c90d354b90877a679189cc"
    );

    assert_eq!(
        hex(TreeSpec::suite_tree(DatasetSpec::cpu2006()).fingerprint()),
        "3817c5449a36955c4a62f27373838d5b"
    );
    assert_eq!(
        hex(TreeSpec::suite_tree(DatasetSpec::omp2001()).fingerprint()),
        "9e2bd12541d066b999e6e98861a100ee"
    );
}

/// Legacy suites keep their frozen string tokens; new suites are keyed
/// by content (`sdef-<hex>`), never by a frozen name.
#[test]
fn legacy_tokens_frozen_new_tokens_content_derived() {
    assert_eq!(SuiteKind::cpu2006().fingerprint_token(), "cpu2006");
    assert_eq!(SuiteKind::omp2001().fingerprint_token(), "omp2001");
    for kind in [SuiteKind::cpu2017(), SuiteKind::cpu2026()] {
        let token = kind.fingerprint_token();
        let expected = format!("sdef-{}", hex(suite_def_fingerprint(kind.def())));
        assert_eq!(
            token,
            expected,
            "{} token is not content-derived",
            kind.tag()
        );
    }
}

/// A new suite's fingerprint is a pure function of its definition:
/// independent of where the suite sits in the registry (probed through
/// both registry-ordered iteration and direct tag lookup) and stable
/// across repeated computation.
#[test]
fn new_suite_fingerprints_are_insertion_order_invariant() {
    // Direct content fingerprints, straight off the statics.
    let direct: Vec<(String, String)> = [SuiteKind::cpu2017(), SuiteKind::cpu2026()]
        .iter()
        .map(|k| (k.tag().to_owned(), hex(suite_def_fingerprint(k.def()))))
        .collect();
    // The same suites reached through registry iteration order...
    for kind in SuiteKind::all() {
        if let Some((_, expected)) = direct.iter().find(|(tag, _)| tag == kind.tag()) {
            assert_eq!(&hex(suite_def_fingerprint(kind.def())), expected);
        }
    }
    // ...and through reversed-order lookup by tag.
    for (tag, expected) in direct.iter().rev() {
        let kind = SuiteKind::by_tag(tag).expect("registered suite");
        assert_eq!(&hex(suite_def_fingerprint(kind.def())), expected);
        // Recomputation is stable.
        assert_eq!(&hex(suite_def_fingerprint(kind.def())), expected);
    }
}

/// The content fingerprint covers the definition, not the pointer: two
/// structurally identical defs hash identically, and any content
/// difference (here: generation year) changes the key.
#[test]
fn suite_def_fingerprint_is_content_only() {
    fn one_bench() -> Vec<workloads::phases::BenchmarkModel> {
        vec![workloads::phases::BenchmarkModel::new("x.bench", 1.0)
            .phase(workloads::phases::Phase::new("only", 1.0))]
    }
    static A: workloads::SuiteDef = workloads::SuiteDef {
        tag: "synthetic",
        display_name: "Synthetic",
        generation: 2030,
        environment: workloads::Environment::SingleThreaded,
        benchmarks: one_bench,
        legacy_token: None,
    };
    static B: workloads::SuiteDef = workloads::SuiteDef {
        tag: "synthetic",
        display_name: "Synthetic",
        generation: 2030,
        environment: workloads::Environment::SingleThreaded,
        benchmarks: one_bench,
        legacy_token: None,
    };
    static C: workloads::SuiteDef = workloads::SuiteDef {
        tag: "synthetic",
        display_name: "Synthetic",
        generation: 2031,
        environment: workloads::Environment::SingleThreaded,
        benchmarks: one_bench,
        legacy_token: None,
    };
    assert_eq!(suite_def_fingerprint(&A), suite_def_fingerprint(&B));
    assert_ne!(suite_def_fingerprint(&A), suite_def_fingerprint(&C));
}

/// The four registered suites resolve distinct dataset cache keys at
/// canonical parameters — no accidental key collisions across
/// generations.
#[test]
fn canonical_dataset_keys_are_distinct_across_suites() {
    let keys: Vec<String> = SuiteKind::all()
        .into_iter()
        .map(|k| hex(DatasetSpec::canonical(k).fingerprint()))
        .collect();
    let unique: std::collections::HashSet<&String> = keys.iter().collect();
    assert_eq!(unique.len(), keys.len(), "duplicate keys: {keys:?}");
}
