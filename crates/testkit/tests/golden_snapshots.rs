//! Golden-snapshot enforcement for the E2–E7 `results/` artifacts.
//!
//! Each test renders its experiment through the same pure
//! `spec_bench::artifacts` function the regeneration binary uses and
//! compares the result **byte for byte** against the checked-in golden
//! file, so the shape claims in EXPERIMENTS.md (leaf counts, headline
//! equations, table percentages, transferability metrics) are enforced
//! in CI rather than merely documented.
//!
//! After a reviewed behavior change, regenerate the goldens with:
//!
//! ```text
//! TESTKIT_BLESS=1 cargo test -p testkit --test golden_snapshots
//! ```
//!
//! The canonical 60k-sample suite datasets and their fitted trees are
//! shared across tests through `OnceLock` so the whole file costs two
//! dataset generations and two tree fits.

use std::sync::OnceLock;

use modeltree::ModelTree;
use perfcounters::Dataset;
use spec_bench::{artifacts, cpu2006_dataset, fit_suite_tree, omp2001_dataset};
use testkit::golden::check_or_bless;

fn cpu() -> &'static (Dataset, ModelTree) {
    static CPU: OnceLock<(Dataset, ModelTree)> = OnceLock::new();
    CPU.get_or_init(|| {
        let data = cpu2006_dataset();
        let tree = fit_suite_tree(&data);
        (data, tree)
    })
}

fn omp() -> &'static (Dataset, ModelTree) {
    static OMP: OnceLock<(Dataset, ModelTree)> = OnceLock::new();
    OMP.get_or_init(|| {
        let data = omp2001_dataset();
        let tree = fit_suite_tree(&data);
        (data, tree)
    })
}

fn enforce(name: &str, rendered: &str) {
    if let Err(report) = check_or_bless(name, rendered) {
        panic!("{report}");
    }
}

#[test]
fn figure1_text_and_dot_match_goldens() {
    let (data, tree) = cpu();
    let art = artifacts::figure1(data, tree);
    enforce("figure1.txt", &art.text);
    enforce("figure1.dot", &art.dot);
}

#[test]
fn figure2_text_and_dot_match_goldens() {
    let (data, tree) = omp();
    let art = artifacts::figure2(data, tree);
    enforce("figure2.txt", &art.text);
    enforce("figure2.dot", &art.dot);
}

#[test]
fn table2_matches_golden() {
    let (data, tree) = cpu();
    enforce("table2.txt", &artifacts::table2(data, tree));
}

#[test]
fn table3_matches_golden() {
    let (data, tree) = cpu();
    enforce("table3.txt", &artifacts::table3(data, tree));
}

#[test]
fn table4_matches_golden() {
    let (data, tree) = omp();
    enforce("table4.txt", &artifacts::table4(data, tree));
}

#[test]
fn transferability_matches_golden() {
    let (cpu_data, _) = cpu();
    let (omp_data, _) = omp();
    enforce(
        "transferability.txt",
        &artifacts::transferability(cpu_data, omp_data),
    );
}
