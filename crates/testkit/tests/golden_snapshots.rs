//! Golden-snapshot enforcement for the E2–E8 `results/` artifacts.
//!
//! Each test renders its experiment through the same pure
//! `spec_bench::artifacts` function the regeneration binary uses and
//! compares the result **byte for byte** against the checked-in golden
//! file, so the shape claims in EXPERIMENTS.md (leaf counts, headline
//! equations, table percentages, transferability metrics) are enforced
//! in CI rather than merely documented.
//!
//! After a reviewed behavior change, regenerate the goldens with:
//!
//! ```text
//! TESTKIT_BLESS=1 cargo test -p testkit --test golden_snapshots
//! ```
//!
//! The artifacts resolve through one shared `PipelineContext` over the
//! environment-selected artifact store — exactly the path the bins use
//! — so a warm store makes this suite fast while the byte-for-byte
//! comparison simultaneously proves cached artifacts replay the cold
//! results exactly.

use std::sync::{Arc, OnceLock};

use modeltree::ModelTree;
use perfcounters::Dataset;
use pipeline::{PipelineContext, TransferSplit};
use spec_bench::{artifacts, cpu2006_artifacts, omp2001_artifacts, transfer_artifacts};
use testkit::golden::check_or_bless;

fn ctx() -> &'static PipelineContext {
    static CTX: OnceLock<PipelineContext> = OnceLock::new();
    CTX.get_or_init(PipelineContext::from_env)
}

fn cpu() -> &'static (Arc<Dataset>, Arc<ModelTree>) {
    static CPU: OnceLock<(Arc<Dataset>, Arc<ModelTree>)> = OnceLock::new();
    CPU.get_or_init(|| cpu2006_artifacts(ctx()))
}

fn omp() -> &'static (Arc<Dataset>, Arc<ModelTree>) {
    static OMP: OnceLock<(Arc<Dataset>, Arc<ModelTree>)> = OnceLock::new();
    OMP.get_or_init(|| omp2001_artifacts(ctx()))
}

fn enforce(name: &str, rendered: &str) {
    if let Err(report) = check_or_bless(name, rendered) {
        panic!("{report}");
    }
}

#[test]
fn figure1_text_and_dot_match_goldens() {
    let (data, tree) = cpu();
    let art = artifacts::figure1(data, tree);
    enforce("figure1.txt", &art.text);
    enforce("figure1.dot", &art.dot);
}

#[test]
fn figure2_text_and_dot_match_goldens() {
    let (data, tree) = omp();
    let art = artifacts::figure2(data, tree);
    enforce("figure2.txt", &art.text);
    enforce("figure2.dot", &art.dot);
}

#[test]
fn table2_matches_golden() {
    let (data, tree) = cpu();
    enforce("table2.txt", &artifacts::table2(data, tree));
}

#[test]
fn table3_matches_golden() {
    let (data, tree) = cpu();
    enforce("table3.txt", &artifacts::table3(data, tree));
}

#[test]
fn table4_matches_golden() {
    let (data, tree) = omp();
    enforce("table4.txt", &artifacts::table4(data, tree));
}

#[test]
fn transferability_matches_golden() {
    static TRANSFER: OnceLock<(TransferSplit, Arc<ModelTree>, Arc<ModelTree>)> = OnceLock::new();
    let (split, cpu_tree, omp_tree) = TRANSFER.get_or_init(|| transfer_artifacts(ctx()));
    enforce(
        "transferability.txt",
        &artifacts::transferability(split, cpu_tree, omp_tree),
    );
}

/// E8 — the cross-generation transfer matrix: byte-identical to the
/// checked-in golden, and (because every assessed cell is a pure
/// function of pipeline artifacts striped deterministically across
/// workers) byte-identical for 1, 2, and 8 worker threads.
#[test]
fn generation_matrix_matches_golden_for_every_thread_count() {
    let rendered = artifacts::generation_matrix(&spec_bench::matrix_artifacts(ctx(), 2));
    enforce("generation_matrix.txt", &rendered);
    for threads in [1, 8] {
        let again = artifacts::generation_matrix(&spec_bench::matrix_artifacts(ctx(), threads));
        assert_eq!(rendered, again, "{threads}-thread matrix diverged");
    }
}
