//! Fault-injection determinism: the streaming layer's recovery
//! machinery must leave no trace in the sealed artifacts.
//!
//! With the fault injector armed — seeded drops, duplicates, reorders,
//! mid-stream host deaths, torn chunk writes — the same fault seed
//! must produce **byte-identical** sealed containers and refit
//! artifacts on 1 and 8 aggregator threads, and exactly-once chunk
//! semantics must hold (no duplicated or lost surviving rows). The
//! seed comes from `SPECREPRO_STREAM_FAULT_SEED` when set (the CI
//! matrix pins one), so the suite doubles as a replayable fuzz target:
//! any seed that fails is a one-line reproduction.

use std::collections::BTreeMap;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use modeltree::M5Config;
use pipeline::{ArtifactStore, ChunkedReader};
use stream::{windowed_refit, FaultConfig, FleetConfig, RefitConfig, StreamConfig, StreamPlan};

fn fault_seed() -> u64 {
    std::env::var("SPECREPRO_STREAM_FAULT_SEED")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(7)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "testkit-stream-faults-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn faulted_config(threads: usize, fault_seed: u64) -> StreamConfig {
    StreamConfig::new(FleetConfig::cpu2006(64, 30, 3))
        .with_shards(8)
        .with_threads(threads)
        .with_chunk_rows(96)
        .with_faults(FaultConfig::standard(fault_seed))
}

/// Every file under `root`, keyed by relative path — artifact stores
/// compare equal iff they hold identical keys with identical bytes.
fn dir_contents(root: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path.strip_prefix(root).unwrap().display().to_string();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    out
}

#[test]
fn same_fault_seed_is_byte_identical_on_1_and_8_threads() {
    let dir = scratch("threads");
    let seed = fault_seed();
    let mut containers = Vec::new();
    let mut stores = Vec::new();
    for threads in [1usize, 8] {
        let cfg = faulted_config(threads, seed);
        let path = dir.join(format!("t{threads}.spdc"));
        let summary = stream::run_stream(&cfg, &path).unwrap();
        assert!(
            summary.faults_injected > 0,
            "seed {seed}: fault schedule injected nothing"
        );
        containers.push(std::fs::read(&path).unwrap());

        // Refit artifacts land in a per-thread-count store.
        let store_root = dir.join(format!("store-t{threads}"));
        let store = ArtifactStore::open(&store_root);
        let mut reader =
            ChunkedReader::open(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        let refit = RefitConfig::new(512, M5Config::default().with_min_leaf(50));
        let fits = windowed_refit(&mut reader, &store, &refit).unwrap();
        assert!(!fits.is_empty());
        stores.push((
            dir_contents(&store_root),
            fits.iter()
                .map(|f| (f.window.clone(), f.fingerprint))
                .collect::<Vec<_>>(),
        ));
    }
    assert_eq!(
        containers[0], containers[1],
        "seed {seed}: sealed container bytes differ between 1 and 8 threads"
    );
    assert_eq!(
        stores[0].1, stores[1].1,
        "seed {seed}: window fingerprints differ between 1 and 8 threads"
    );
    assert_eq!(
        stores[0].0, stores[1].0,
        "seed {seed}: refit artifact bytes differ between 1 and 8 threads"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faults_preserve_exactly_once_semantics() {
    let dir = scratch("exactly-once");
    let seed = fault_seed();
    let cfg = faulted_config(4, seed);
    let path = dir.join("faulted.spdc");
    let summary = stream::run_stream(&cfg, &path).unwrap();
    let plan = StreamPlan::new(&cfg);

    // The plan accounts for host deaths, so its row total is the exact
    // survivor count: more means a duplicate slipped the frontier,
    // fewer means a dropped record was never retransmitted.
    assert_eq!(summary.rows, plan.total_rows(), "seed {seed}");
    assert!(summary.duplicates_dropped > 0, "seed {seed}: no dup faults");
    assert!(summary.retransmits > 0, "seed {seed}: no drop faults");

    // Every sealed chunk verifies and matches the pure-source recompute
    // byte for byte — the recovery path for a corrupt on-disk chunk.
    let mut reader =
        ChunkedReader::open(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    assert_eq!(reader.n_chunks() as u64, summary.chunks);
    let bytes = std::fs::read(&path).unwrap();
    for i in 0..reader.n_chunks() {
        reader
            .read_chunk(i)
            .unwrap_or_else(|e| panic!("seed {seed}: sealed chunk {i} failed verification: {e}"));
        let meta = reader.meta(i);
        let body = &bytes[meta.offset as usize..(meta.offset + meta.len) as usize];
        assert_eq!(
            body,
            plan.chunk_body(i as u64).as_slice(),
            "seed {seed}: chunk {i} differs from pure recompute"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_on_disk_chunk_is_evicted_and_recomputed() {
    let dir = scratch("evict");
    let cfg = faulted_config(2, fault_seed());
    let path = dir.join("fleet.spdc");
    stream::run_stream(&cfg, &path).unwrap();
    let plan = StreamPlan::new(&cfg);

    // Flip a byte in the middle of chunk 1's body on disk.
    let mut bytes = std::fs::read(&path).unwrap();
    let reader = ChunkedReader::open(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    let meta = reader.meta(1);
    bytes[meta.offset as usize + meta.len as usize / 2] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    // Detection: the hash refuses the chunk. Recovery: recompute the
    // body from the pure source plan and rewrite it in place.
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .unwrap();
    let mut rw = ChunkedReader::open(file).unwrap();
    assert!(rw.read_chunk(1).is_err(), "corruption went undetected");
    rw.rewrite_chunk(1, &plan.chunk_body(1)).unwrap();
    assert!(rw.read_chunk(1).is_ok(), "recomputed chunk must verify");

    // After recovery the container is byte-identical to a clean seal.
    let clean = dir.join("clean.spdc");
    stream::run_stream(&cfg, &clean).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&clean).unwrap(),
        "recovered container differs from a clean seal"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn different_fault_seeds_still_seal_verifiable_containers() {
    // A small seed sweep: whatever the schedule does, sealed chunks
    // always verify and row accounting always matches the plan.
    let dir = scratch("sweep");
    for seed in [1u64, 2, 3] {
        let cfg = faulted_config(3, seed);
        let path = dir.join(format!("s{seed}.spdc"));
        let summary = stream::run_stream(&cfg, &path).unwrap();
        let plan = StreamPlan::new(&cfg);
        assert_eq!(summary.rows, plan.total_rows(), "seed {seed}");
        let mut reader =
            ChunkedReader::open(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        for i in 0..reader.n_chunks() {
            reader.read_chunk(i).unwrap();
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
