//! Statistical oracles: `spec-stats` against independent high-precision
//! references.
//!
//! * t-test p-values (pooled and paired, which have integer degrees of
//!   freedom) against the Abramowitz & Stegun closed-form Student-t CDF
//!   — agreement to `1e-10`;
//! * Mann–Whitney p-values against exact enumeration of the U null
//!   distribution over all group assignments of the pooled sample —
//!   the normal approximation (with continuity correction) must track
//!   the exact tail probability closely at the sample sizes the
//!   workspace uses;
//! * bootstrap percentile CIs against exact enumeration of all `n^n`
//!   resamples for small `n` — the sampled bounds must be atoms of the
//!   exact distribution whose exact CDF brackets the nominal quantiles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spec_stats::bootstrap::{bootstrap_ci, mae_ci};
use spec_stats::nonparametric::mann_whitney_u;
use spec_stats::ttest::{paired_t_test, two_sample_t_test};
use testkit::full_depth;
use testkit::statref::{
    atom_cdf, bootstrap_exact_distribution, mann_whitney_exact, student_t_two_sided_p,
};

fn n_trials() -> usize {
    if full_depth() {
        600
    } else {
        150
    }
}

fn draw_sample(rng: &mut StdRng, n: usize, spread: f64) -> Vec<f64> {
    (0..n)
        .map(|_| 1.0 + spread * (rng.gen::<f64>() - 0.5) + rng.gen::<f64>() * 0.2)
        .collect()
}

#[test]
fn pooled_t_p_values_match_closed_form() {
    let mut rng = StdRng::seed_from_u64(0x7001);
    for trial in 0..n_trials() {
        let na = 2 + rng.gen_range(0usize..12);
        let nb = 2 + rng.gen_range(0usize..12);
        let shift = 0.5 * (rng.gen::<f64>() - 0.5);
        let a = draw_sample(&mut rng, na, 1.0);
        let b: Vec<f64> = draw_sample(&mut rng, nb, 0.8)
            .into_iter()
            .map(|x| x + shift)
            .collect();
        let r = two_sample_t_test(&a, &b).unwrap();
        let dof = (na + nb - 2) as u32;
        let want = student_t_two_sided_p(r.statistic, dof);
        assert!(
            (r.p_value - want).abs() < 1e-10,
            "trial {trial}: pooled t p={} vs closed form {want} (t={}, dof={dof})",
            r.p_value,
            r.statistic
        );
    }
}

#[test]
fn paired_t_p_values_match_closed_form() {
    let mut rng = StdRng::seed_from_u64(0x7002);
    for trial in 0..n_trials() {
        let n = 2 + rng.gen_range(0usize..15);
        let a = draw_sample(&mut rng, n, 1.0);
        let b: Vec<f64> = a
            .iter()
            .map(|x| x + 0.3 * (rng.gen::<f64>() - 0.45))
            .collect();
        let r = paired_t_test(&a, &b).unwrap();
        if !r.statistic.is_finite() {
            continue; // zero-variance differences: p is exactly 0/1 by policy
        }
        let want = student_t_two_sided_p(r.statistic, (n - 1) as u32);
        assert!(
            (r.p_value - want).abs() < 1e-10,
            "trial {trial}: paired t p={} vs closed form {want} (t={}, n={n})",
            r.p_value,
            r.statistic
        );
    }
}

#[test]
fn mann_whitney_normal_approximation_tracks_exact_enumeration() {
    let mut rng = StdRng::seed_from_u64(0x7003);
    let mut worst: f64 = 0.0;
    for trial in 0..n_trials() {
        let na = 4 + rng.gen_range(0usize..4);
        let nb = 4 + rng.gen_range(0usize..4);
        let tied_grid = rng.gen_bool(0.4);
        let shift = rng.gen_range(0.0..1.5);
        let draw = |rng: &mut StdRng, n: usize, shift: f64| -> Vec<f64> {
            (0..n)
                .map(|_| {
                    let x = rng.gen::<f64>() * 2.0 + shift;
                    if tied_grid {
                        (x * 4.0).round() / 4.0 // coarse grid: many ties
                    } else {
                        x
                    }
                })
                .collect()
        };
        let a = draw(&mut rng, na, 0.0);
        let b = draw(&mut rng, nb, shift);
        let approx = mann_whitney_u(&a, &b).unwrap();
        let exact = mann_whitney_exact(&a, &b);
        let err = (approx.p_value - exact.p_two_sided).abs();
        worst = worst.max(err);
        // The normal approximation is weakest when heavy ties coarsen
        // the already-small exact null support (C(8,4) = 70 assignments
        // at 4 vs 4): absolute error approaches 0.07 there, while
        // tie-free pulls stay well under 0.06.
        let cap = if tied_grid { 0.09 } else { 0.06 };
        assert!(
            err < cap,
            "trial {trial}: MW approx p={} vs exact {} (na={na}, nb={nb}, ties={tied_grid})",
            approx.p_value,
            exact.p_two_sided
        );
        // Directional consistency: the z statistic and the exact U
        // deviation must point the same way.
        let mu = (na * nb) as f64 / 2.0;
        if exact.u != mu && approx.statistic != 0.0 {
            assert_eq!(
                approx.statistic.signum(),
                (exact.u - mu).signum(),
                "trial {trial}: z sign disagrees with exact U deviation"
            );
        }
    }
    // The approximation should usually be far better than the hard cap.
    assert!(worst > 0.0, "exact and approx never differed — suspicious");
}

/// Checks a sampled percentile bound against the exact atom
/// distribution: the bound must be (numerically) an atom, and the exact
/// probability mass strictly below / at-or-below it must bracket the
/// nominal quantile.
fn assert_valid_quantile(atoms: &[f64], bound: f64, q: f64, margin: f64, what: &str) {
    let is_atom = atoms.iter().any(|&a| (a - bound).abs() <= 1e-12);
    assert!(
        is_atom,
        "{what}: bound {bound} is not an atom of the exact distribution"
    );
    let below = atoms.iter().filter(|&&a| a < bound - 1e-12).count() as f64 / atoms.len() as f64;
    let at_or_below = atom_cdf(atoms, bound + 1e-12);
    assert!(
        below <= q + margin,
        "{what}: P(X < bound) = {below} overshoots quantile {q}"
    );
    assert!(
        at_or_below >= q - margin,
        "{what}: P(X <= bound) = {at_or_below} undershoots quantile {q}"
    );
}

#[test]
fn bootstrap_percentile_ci_matches_exact_enumeration() {
    // n = 4 pairs: 256 equally-likely resamples, exactly enumerable.
    let predicted = [1.0, 2.0, 3.0, 4.0];
    let actual = [1.2, 1.8, 3.5, 3.9];
    let n_resamples = if full_depth() { 200_000 } else { 40_000 };
    let margin = 0.03;

    // Mean absolute error.
    let mae = |p: &[f64], a: &[f64]| -> f64 {
        p.iter().zip(a).map(|(x, y)| (x - y).abs()).sum::<f64>() / p.len() as f64
    };
    let atoms = bootstrap_exact_distribution(&predicted, &actual, mae);
    let ci = mae_ci(&predicted, &actual, n_resamples, 0.95, 424_242).unwrap();
    assert!((ci.point - mae(&predicted, &actual)).abs() < 1e-12);
    assert_valid_quantile(&atoms, ci.lower, 0.025, margin, "mae lower");
    assert_valid_quantile(&atoms, ci.upper, 0.975, margin, "mae upper");
    assert!(ci.lower <= ci.upper);

    // A second statistic through the generic entry point: mean error.
    let mean_err = |p: &[f64], a: &[f64]| -> f64 {
        p.iter().zip(a).map(|(x, y)| x - y).sum::<f64>() / p.len() as f64
    };
    let atoms = bootstrap_exact_distribution(&predicted, &actual, mean_err);
    let ci = bootstrap_ci(&predicted, &actual, mean_err, n_resamples, 0.90, 99).unwrap();
    assert_valid_quantile(&atoms, ci.lower, 0.05, margin, "mean-err lower");
    assert_valid_quantile(&atoms, ci.upper, 0.95, margin, "mean-err upper");
}

#[test]
fn bootstrap_ci_narrows_with_confidence() {
    // Percentile CIs must be nested: 80% inside 95% inside 99%.
    let predicted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    let actual = [1.3, 1.6, 3.4, 4.4, 4.8, 6.5];
    let mut widths = Vec::new();
    for conf in [0.80, 0.95, 0.99] {
        let ci = mae_ci(&predicted, &actual, 20_000, conf, 7).unwrap();
        widths.push(ci.width());
    }
    assert!(
        widths[0] <= widths[1] && widths[1] <= widths[2],
        "{widths:?}"
    );
}
