//! Property tests for the chunked `SPDC` container codec.
//!
//! Round-trip: any dataset, sliced into chunks of any size, reads back
//! bit-exactly through `ChunkedReader`. Corruption: a single flipped
//! bit in a chunk body is caught by the per-chunk integrity hash; a
//! truncated directory and a stale schema version are refused at
//! `open` — typed errors, never panics, never silently wrong rows.

use std::io::Cursor;

use perfcounters::{Dataset, EventId, Sample};
use pipeline::{encode_chunk, ChunkedReader, ChunkedWriter};
use proptest::prelude::*;

const N_EVENTS: usize = EventId::ALL.len();
const FOOTER_LEN: usize = 24;

type Row = (usize, f64, Vec<f64>);

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        0usize..3,
        0.05f64..8.0,
        proptest::collection::vec(0.0f64..0.6, N_EVENTS),
    )
}

fn dataset_from_rows(rows: &[Row]) -> Dataset {
    let mut ds = Dataset::new();
    let labels: Vec<_> = ["429.mcf", "470.lbm", "433.milc"]
        .iter()
        .map(|n| ds.add_benchmark(n))
        .collect();
    for (which, cpi, events) in rows {
        let mut s = Sample::zeros(*cpi);
        for (e, v) in EventId::ALL.iter().zip(events) {
            s.set(*e, *v);
        }
        ds.push(s, labels[which % labels.len()]);
    }
    ds
}

/// Encodes `ds` into a full container, `chunk_rows` rows per chunk.
fn container_bytes(ds: &Dataset, chunk_rows: usize) -> Vec<u8> {
    let mut cursor = Cursor::new(Vec::new());
    {
        let mut w = ChunkedWriter::new(&mut cursor, ds.benchmark_names()).unwrap();
        let mut at = 0;
        while at < ds.len() {
            let end = (at + chunk_rows).min(ds.len());
            let labels: Vec<u32> = (at..end).map(|i| ds.label(i)).collect();
            let cpi: Vec<f64> = (at..end).map(|i| ds.sample(i).cpi()).collect();
            let mut events = Vec::with_capacity((end - at) * N_EVENTS);
            for e in EventId::ALL {
                for i in at..end {
                    events.push(ds.sample(i).get(e));
                }
            }
            w.append_chunk(&encode_chunk(&labels, &cpi, &events), None)
                .unwrap();
            at = end;
        }
        w.finish().unwrap();
    }
    cursor.into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_bit_exact(
        rows in proptest::collection::vec(row_strategy(), 1..50),
        chunk_rows in 1usize..9,
    ) {
        let ds = dataset_from_rows(&rows);
        let bytes = container_bytes(&ds, chunk_rows);
        let mut r = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        prop_assert_eq!(r.n_rows(), ds.len() as u64);
        prop_assert_eq!(r.n_chunks(), ds.len().div_ceil(chunk_rows));
        let back = r.window_dataset(0..ds.len() as u64).unwrap();
        for i in 0..ds.len() {
            prop_assert_eq!(back.label(i), ds.label(i));
            prop_assert_eq!(
                back.sample(i).cpi().to_bits(),
                ds.sample(i).cpi().to_bits()
            );
            for e in EventId::ALL {
                prop_assert_eq!(
                    back.sample(i).get(e).to_bits(),
                    ds.sample(i).get(e).to_bits()
                );
            }
        }
    }

    #[test]
    fn single_bit_flip_in_a_chunk_body_is_detected(
        rows in proptest::collection::vec(row_strategy(), 1..30),
        chunk_rows in 1usize..6,
        chunk_frac in 0.0f64..1.0,
        byte_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let ds = dataset_from_rows(&rows);
        let mut bytes = container_bytes(&ds, chunk_rows);
        let r = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        let chunk = ((chunk_frac * r.n_chunks() as f64) as usize).min(r.n_chunks() - 1);
        let meta = r.meta(chunk);
        let at = meta.offset as usize
            + ((byte_frac * meta.len as f64) as usize).min(meta.len as usize - 1);
        bytes[at] ^= 1 << bit;
        // The flip lands inside exactly one chunk: either `open` (which
        // never reads bodies) still succeeds and reading that chunk
        // fails its hash, or the flip corrupted directory-visible state
        // and `open` itself refuses. Both are typed detection.
        match ChunkedReader::open(Cursor::new(&bytes)) {
            Err(_) => {}
            Ok(mut reader) => {
                prop_assert!(reader.read_chunk(chunk).is_err());
                // Every other chunk is untouched and still verifies.
                for other in 0..reader.n_chunks() {
                    if other != chunk {
                        prop_assert!(reader.read_chunk(other).is_ok());
                    }
                }
            }
        }
    }

    #[test]
    fn truncated_directory_is_refused_at_open(
        rows in proptest::collection::vec(row_strategy(), 1..30),
        chunk_rows in 1usize..6,
        cut_frac in 0.01f64..0.99,
    ) {
        let ds = dataset_from_rows(&rows);
        let bytes = container_bytes(&ds, chunk_rows);
        // Cut anywhere from mid-header to mid-footer: open must return
        // a typed error, never panic or misread.
        let cut = 1 + ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(ChunkedReader::open(Cursor::new(&bytes[..cut])).is_err());
    }

    #[test]
    fn stale_schema_version_is_refused_at_open(
        rows in proptest::collection::vec(row_strategy(), 1..20),
        bump in 1u32..5,
    ) {
        let mut bytes = container_bytes(&dataset_from_rows(&rows), 4);
        // The footer's trailing u32 is the schema version; a reader
        // from a different format generation must refuse the file.
        let at = bytes.len() - 4;
        let stale = u32::from_le_bytes(bytes[at..].try_into().unwrap()) + bump;
        bytes[at..].copy_from_slice(&stale.to_le_bytes());
        prop_assert!(ChunkedReader::open(Cursor::new(&bytes)).is_err());
        // Same for the copy in the header (offset 4, hash-protected —
        // corrupting it trips the header hash or the version check).
        let mut bytes = container_bytes(&dataset_from_rows(&rows), 4);
        let stale = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) + bump;
        bytes[4..8].copy_from_slice(&stale.to_le_bytes());
        prop_assert!(ChunkedReader::open(Cursor::new(&bytes)).is_err());
    }
}

#[test]
fn footer_is_fixed_width() {
    // The reader locates the directory from a fixed-size footer; this
    // pins the constant the truncation strategy above relies on.
    let ds = dataset_from_rows(&[(0, 1.0, vec![0.1; N_EVENTS])]);
    let bytes = container_bytes(&ds, 1);
    assert!(bytes.len() > FOOTER_LEN);
    assert_eq!(&bytes[bytes.len() - 8..bytes.len() - 4], b"CDPS");
}
