//! Metamorphic verification: invariances the M5' trainer must satisfy
//! under semantics-preserving transformations of its input, plus
//! behavior on adversarial datasets.
//!
//! Relations covered (each over multiple seeded datasets):
//!
//! * **constant-column inertness** — an all-constant attribute can never
//!   split or enter a model, so changing its constant value leaves the
//!   fitted tree bit-identical (`structural_eq`);
//! * **row-permutation equivariance** — reordering training rows leaves
//!   the tree shape and predictions unchanged up to floating-point
//!   accumulation order (checked on tie-free datasets);
//! * **attribute-permutation equivariance** — swapping two event
//!   columns relabels the fitted splits without changing shape,
//!   thresholds, or (with constant leaf models) predictions, all
//!   bit-exactly;
//! * **affine target rescaling** — `cpi -> a*cpi + b` preserves the
//!   tree shape; with a power-of-two `a` and `b = 0` every quantity
//!   scales bit-exactly;
//! * **duplicated-row weighting** — repeating every row `k=2` times
//!   while doubling `min_leaf`/`min_split` is a pure reweighting: the
//!   unsmoothed, unpruned tree and its predictions are bit-identical;
//! * **adversarial inputs** — NaN/inf cells are rejected with
//!   `TreeError::NonFiniteAttribute`, all-equal targets collapse to a
//!   single constant leaf, and `min_leaf = 1` configurations genuinely
//!   produce (and survive) single-row leaves.

use modeltree::{M5Config, ModelTree, NodeKind, TreeError};
use perfcounters::events::EventId;
use perfcounters::Dataset;
use testkit::generators::{
    all_equal_target_dataset, differential_dataset, duplicate_rows, near_tied_dataset,
    permute_rows, quantize_target, random_dataset, rescale_target, swap_columns,
    with_constant_column, with_poisoned_cell,
};
use testkit::{close_to, full_depth, split_signature};

fn seeds() -> std::ops::Range<u64> {
    if full_depth() {
        0..40
    } else {
        0..15
    }
}

/// A plain config: pruning on, smoothing off, no razor-edge knobs.
fn base_config() -> M5Config {
    M5Config::default().with_smoothing(false)
}

/// The config family for the bit-exact relations: no pruning and no
/// smoothing, so predictions are pure leaf means and tree shape depends
/// only on the split search.
fn exact_config() -> M5Config {
    M5Config::default().with_smoothing(false).with_prune(false)
}

/// True if every event column is duplicate-free (no exact ties), so the
/// fitted tree cannot depend on row order even in the last bit's
/// tie-breaking.
fn tie_free(data: &Dataset) -> bool {
    EventId::ALL.iter().all(|&e| {
        let mut col = data.column(e);
        col.sort_by(f64::total_cmp);
        col.windows(2).all(|w| w[0] != w[1])
    })
}

#[test]
fn constant_columns_are_inert() {
    let mut checked = 0;
    for seed in seeds() {
        // Pin one attribute to zero, then to an arbitrary constant: the
        // two trees must be bit-identical.
        let base = with_constant_column(&random_dataset(seed), EventId::FpAsst, 0.0);
        let moved = with_constant_column(&base, EventId::FpAsst, 7.5);
        for config in [base_config(), exact_config()] {
            let t0 = ModelTree::fit(&base, &config).unwrap();
            let t1 = ModelTree::fit(&moved, &config).unwrap();
            assert!(
                t0.structural_eq(&t1),
                "seed {seed}: moving a constant column changed the tree"
            );
            for (sample, _) in base.iter() {
                assert_eq!(t0.predict(sample).to_bits(), t1.predict(sample).to_bits());
            }
            checked += 1;
        }
    }
    assert!(checked > 0);
}

#[test]
fn row_permutation_leaves_tree_equivalent() {
    let mut checked = 0;
    for seed in seeds() {
        let data = random_dataset(seed);
        if !tie_free(&data) {
            continue; // exact ties make shape legitimately order-sensitive
        }
        let shuffled = permute_rows(&data, seed ^ 0xBEEF);
        let config = base_config();
        let t0 = ModelTree::fit(&data, &config).unwrap();
        let t1 = ModelTree::fit(&shuffled, &config).unwrap();
        assert_eq!(
            t0.n_leaves(),
            t1.n_leaves(),
            "seed {seed}: row order changed the tree shape"
        );
        for (i, (sample, _)) in data.iter().enumerate() {
            if let Err(msg) = close_to(t0.predict(sample), t1.predict(sample), 1e-6) {
                panic!("seed {seed} row {i}: permutation moved a prediction: {msg}");
            }
        }
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} tie-free datasets in the pool");
}

#[test]
fn attribute_permutation_relabels_without_reshaping() {
    let (a, b) = (EventId::Load, EventId::Simd);
    let swap = |e: EventId| {
        if e == a {
            b
        } else if e == b {
            a
        } else {
            e
        }
    };
    // Swapping columns reorders the attribute scan, so an *exact*
    // cross-attribute SDR tie (two columns inducing the same best
    // y-partition) legitimately resolves to the other attribute. Such
    // ties are rare but real in the pool; the relation is asserted on a
    // matched-majority basis, and matched seeds are held to bit
    // exactness.
    let mut matched = 0usize;
    let mut total = 0usize;
    for seed in seeds() {
        let data = random_dataset(seed);
        let swapped = swap_columns(&data, a, b);
        let config = exact_config();
        let t0 = ModelTree::fit(&data, &config).unwrap();
        let t1 = ModelTree::fit(&swapped, &config).unwrap();
        total += 1;
        // Same shape and bit-equal thresholds, with the split events
        // mapped through the swap.
        let sig0: Vec<_> = split_signature(&t0)
            .into_iter()
            .map(|s| s.map(|(e, bits)| (swap(e), bits)))
            .collect();
        if sig0 != split_signature(&t1) {
            continue;
        }
        matched += 1;
        // Unsmoothed, unpruned predictions are leaf means: bit-exact
        // under the relabeling.
        for (i, (sample, _)) in data.iter().enumerate() {
            let mut relabeled = sample.clone();
            relabeled.set(a, sample.get(b));
            relabeled.set(b, sample.get(a));
            assert_eq!(
                t0.predict(sample).to_bits(),
                t1.predict(&relabeled).to_bits(),
                "seed {seed} row {i}: prediction moved under column swap"
            );
        }
    }
    assert!(
        matched * 5 >= total * 4,
        "column swap reshaped {}/{} trees — beyond what SDR ties explain",
        total - matched,
        total
    );
}

#[test]
fn affine_target_rescaling_preserves_shape() {
    for seed in seeds() {
        let data = random_dataset(seed);
        let config = base_config();
        let t0 = ModelTree::fit(&data, &config).unwrap();

        // Power-of-two scale, zero shift: every intermediate quantity
        // scales exactly, so shape and predictions are bit-exact.
        let scaled = rescale_target(&data, 4.0, 0.0);
        let t4 = ModelTree::fit(&scaled, &config).unwrap();
        assert_eq!(
            split_signature(&t0),
            split_signature(&t4),
            "seed {seed}: 4x target rescale reshaped the tree"
        );
        for (i, (sample, _)) in data.iter().enumerate() {
            assert_eq!(
                (4.0 * t0.predict(sample)).to_bits(),
                t4.predict(sample).to_bits(),
                "seed {seed} row {i}: 4x rescale is not exact"
            );
        }
    }

    // General affine map. Small noise-only nodes rank attributes by
    // SDR margins as tight as the cancellation error of the variance
    // formula (~1e-12 relative after the +b shift), which rounding can
    // legitimately reorder — so the shape claim is depth-limited to
    // mostly signal-driven splits AND matched-majority across seeds.
    // Matched seeds must track the map to tight tolerance.
    let (a, b) = (1.7, 0.35);
    let mut matched = 0usize;
    let mut total = 0usize;
    for seed in seeds() {
        let data = random_dataset(seed);
        let config = exact_config().with_max_depth(4);
        let t0 = ModelTree::fit(&data, &config).unwrap();
        let affine = rescale_target(&data, a, b);
        let ta = ModelTree::fit(&affine, &config).unwrap();
        total += 1;
        // The root split is decisively signal-driven: it must never
        // move, whatever the rescale does to low-order bits.
        assert_eq!(
            split_signature(&t0).first(),
            split_signature(&ta).first(),
            "seed {seed}: affine rescale moved the root split"
        );
        if split_signature(&t0) != split_signature(&ta) {
            continue;
        }
        matched += 1;
        for (i, (sample, _)) in data.iter().enumerate() {
            if let Err(msg) = close_to(a * t0.predict(sample) + b, ta.predict(sample), 1e-9) {
                panic!("seed {seed} row {i}: affine rescale broke prediction: {msg}");
            }
        }
    }
    assert!(
        matched * 3 >= total * 2,
        "affine rescale reshaped {}/{} depth-limited trees — beyond near-tie flips",
        total - matched,
        total
    );
}

#[test]
fn duplicated_rows_are_pure_reweighting() {
    for seed in seeds() {
        // Quantized targets make every CPI running sum exact, so the
        // doubled dataset's sums are exactly twice the original's and
        // the whole fit scales bit-exactly (see `quantize_target`).
        let data = quantize_target(&random_dataset(seed));
        let doubled = duplicate_rows(&data, 2);
        let config = exact_config();
        let mut config2 = exact_config().with_min_leaf(2 * config.min_leaf);
        config2.min_split = 2 * config.min_split;
        let t0 = ModelTree::fit(&data, &config).unwrap();
        let t1 = ModelTree::fit(&doubled, &config2).unwrap();
        assert_eq!(
            split_signature(&t0),
            split_signature(&t1),
            "seed {seed}: duplicating rows changed the tree shape"
        );
        for (i, (sample, _)) in data.iter().enumerate() {
            assert_eq!(
                t0.predict(sample).to_bits(),
                t1.predict(sample).to_bits(),
                "seed {seed} row {i}: duplication reweighting moved a prediction"
            );
        }
    }
}

#[test]
fn non_finite_cells_are_rejected_not_mangled() {
    for seed in seeds() {
        let data = random_dataset(seed);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let poisoned = with_poisoned_cell(&data, bad, seed.wrapping_mul(31) + 1);
            match ModelTree::fit(&poisoned, &M5Config::default()) {
                Err(TreeError::NonFiniteAttribute(_)) => {}
                other => panic!(
                    "seed {seed}: poisoned cell ({bad}) gave {other:?} instead of \
                     NonFiniteAttribute"
                ),
            }
        }
    }
}

#[test]
fn all_equal_targets_collapse_to_one_constant_leaf() {
    for seed in seeds() {
        let data = all_equal_target_dataset(seed);
        let cpi = data.sample(0).cpi();
        for config in [M5Config::default(), exact_config()] {
            let tree = ModelTree::fit(&data, &config).unwrap();
            assert_eq!(tree.n_leaves(), 1, "seed {seed}: flat target still split");
            for (sample, _) in data.iter() {
                assert_eq!(tree.predict(sample).to_bits(), cpi.to_bits());
            }
        }
    }
}

#[test]
fn min_leaf_one_produces_and_survives_single_row_leaves() {
    let config = M5Config::default()
        .with_min_leaf(1)
        .with_smoothing(false)
        .with_prune(false);
    let mut single_row_leaves = 0usize;
    for seed in seeds() {
        let data = random_dataset(seed);
        let tree = ModelTree::fit(&data, &config).unwrap();
        single_row_leaves += tree
            .node_ids()
            .filter(|&id| {
                let n = tree.node(id);
                matches!(n.kind(), NodeKind::Leaf { .. }) && n.n_samples() == 1
            })
            .count();
        // Every training sample still predicts finitely.
        for (sample, _) in data.iter() {
            assert!(tree.predict(sample).is_finite());
        }
    }
    assert!(
        single_row_leaves > 0,
        "the pool never exercised a single-row leaf"
    );
}

#[test]
fn near_tied_datasets_train_identically_to_reference() {
    // Belt-and-braces on top of the differential sweep: the dedicated
    // tie-heavy generator against the oracle at the tie-sensitive
    // corner (min_leaf = 1).
    let config = M5Config::default().with_min_leaf(1).with_smoothing(false);
    for seed in seeds() {
        let data = near_tied_dataset(seed);
        let reference = testkit::reference::RefTree::fit(&data, &config).unwrap();
        let tree = ModelTree::fit(&data, &config).unwrap();
        if let Err(mismatch) = reference.assert_matches(&tree) {
            panic!("seed {seed}: tie-heavy dataset diverged from reference: {mismatch}");
        }
    }
}

#[test]
fn adversarial_pool_is_actually_represented() {
    // The differential pool must keep drawing the adversarial flavors;
    // guard against a refactor quietly dropping them.
    let mut tiny = 0;
    let mut flat = 0;
    for d in 0..40 {
        let ds = differential_dataset(d);
        if ds.len() < 8 {
            tiny += 1;
        }
        let first = ds.sample(0).cpi();
        if (0..ds.len()).all(|i| ds.sample(i).cpi() == first) {
            flat += 1;
        }
    }
    assert!(tiny >= 3, "tiny datasets missing from the pool");
    assert!(flat >= 3, "flat-target datasets missing from the pool");
}
