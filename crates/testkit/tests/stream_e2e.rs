//! Streaming end-to-end differential oracle.
//!
//! The out-of-core path must be invisible to the model: a windowed fit
//! that streams its rows through `ChunkedReader::window_dataset` (one
//! window resident at a time) is **bit-identical** — trees compared by
//! serialization, predictions compared via `to_bits` — to the same fit
//! over a fully materialized in-memory dataset. That must hold for
//! every chunk size, including 1-row chunks (every row pays full chunk
//! framing) and lane-tail sizes that leave SIMD remainders, and for
//! every aggregator thread count, because the sealed container bytes
//! themselves are thread-count-invariant.

use std::io::BufReader;
use std::path::PathBuf;

use modeltree::{M5Config, ModelTree};
use pipeline::ChunkedReader;
use stream::{FleetConfig, RefitConfig, StreamConfig, StreamPlan};

const HOSTS: u64 = 48;
const INTERVALS: u32 = 25;
const SEED: u64 = 11;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("testkit-stream-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stream_config(chunk_rows: usize, threads: usize) -> StreamConfig {
    StreamConfig::new(FleetConfig::cpu2006(HOSTS, INTERVALS, SEED))
        .with_shards(4)
        .with_threads(threads)
        .with_chunk_rows(chunk_rows)
}

fn sealed_bytes(dir: &std::path::Path, cfg: &StreamConfig, tag: &str) -> Vec<u8> {
    let path = dir.join(format!("{tag}.spdc"));
    stream::run_stream(cfg, &path).unwrap();
    std::fs::read(&path).unwrap()
}

fn open_reader(dir: &std::path::Path, tag: &str) -> ChunkedReader<BufReader<std::fs::File>> {
    let path = dir.join(format!("{tag}.spdc"));
    ChunkedReader::open(BufReader::new(std::fs::File::open(path).unwrap())).unwrap()
}

fn assert_trees_bit_identical(ooc: &ModelTree, mem: &ModelTree, context: &str) {
    assert_eq!(
        serde_json::to_string(ooc).unwrap(),
        serde_json::to_string(mem).unwrap(),
        "{context}: serialized trees differ"
    );
}

#[test]
fn ooc_window_fits_bit_identical_to_in_memory_across_chunk_sizes() {
    let dir = scratch("chunks");
    // 1-row chunks maximize framing overhead; 7 leaves a lane tail in
    // every chunk; 300 does not divide the 1200-row total.
    for chunk_rows in [1usize, 7, 300] {
        let cfg = stream_config(chunk_rows, 1);
        let tag = format!("c{chunk_rows}");
        sealed_bytes(&dir, &cfg, &tag);
        let mut reader = open_reader(&dir, &tag);
        let plan = StreamPlan::new(&cfg);
        let full = plan.naive_dataset();
        assert_eq!(reader.n_rows(), full.len() as u64);

        let m5 = M5Config::default().with_min_leaf(40);
        let refit = RefitConfig::new(384, m5);
        let windows = refit.windows(reader.n_rows());
        assert!(windows.len() > 1, "refit must slide, not fit once");
        for w in windows {
            let data = reader.window_dataset(w.clone()).unwrap();
            let ooc = ModelTree::fit(&data, &m5).unwrap();
            let rows: Vec<u32> = (w.start as u32..w.end as u32).collect();
            let mem = ModelTree::fit_indices(&full, &rows, &m5).unwrap();
            let context = format!("chunk_rows {chunk_rows}, window {w:?}");
            assert_trees_bit_identical(&ooc, &mem, &context);
            for i in 0..data.len() {
                assert_eq!(
                    ooc.predict(data.sample(i)).to_bits(),
                    mem.predict(full.sample(w.start as usize + i)).to_bits(),
                    "{context}: prediction for row {i} diverged"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sealed_container_is_thread_count_invariant() {
    let dir = scratch("threads");
    for chunk_rows in [1usize, 128] {
        let baseline = sealed_bytes(&dir, &stream_config(chunk_rows, 1), "t1");
        for threads in [2usize, 8] {
            let other = sealed_bytes(
                &dir,
                &stream_config(chunk_rows, threads),
                &format!("t{threads}"),
            );
            assert_eq!(
                baseline, other,
                "chunk_rows {chunk_rows}: {threads}-thread container bytes diverged from 1-thread"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn window_datasets_match_the_oracle_on_odd_boundaries() {
    let dir = scratch("windows");
    let cfg = stream_config(7, 2);
    sealed_bytes(&dir, &cfg, "odd");
    let mut reader = open_reader(&dir, "odd");
    let full = StreamPlan::new(&cfg).naive_dataset();
    let n = reader.n_rows();
    // Mid-chunk starts and ends, a single row, a whole chunk, the tail.
    let windows = [0..1, 5..13, 7..14, 3..n, n - 1..n, 0..n];
    for w in windows {
        let data = reader.window_dataset(w.clone()).unwrap();
        assert_eq!(data.len() as u64, w.end - w.start, "window {w:?}");
        for i in 0..data.len() {
            let j = w.start as usize + i;
            assert_eq!(data.label(i), full.label(j), "window {w:?} row {i}");
            assert_eq!(
                data.sample(i).cpi().to_bits(),
                full.sample(j).cpi().to_bits(),
                "window {w:?} row {i}"
            );
            for e in perfcounters::EventId::ALL {
                assert_eq!(
                    data.sample(i).get(e).to_bits(),
                    full.sample(j).get(e).to_bits(),
                    "window {w:?} row {i} event {e:?}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
