//! SIMD-axis verification: the vectorized engine kernels against the
//! scalar oracles, and the quantized `f32` fast path against its
//! published error bound.
//!
//! The tentpole contract of the vectorized kernels is *bit-identity*:
//! with `f64` precision, turning SIMD on or off — at any block size,
//! including degenerate ones that force scalar lane tails on every
//! block — must not change a single output bit. These tests sweep that
//! axis across the differential corner lattice, re-run the canonical
//! E2 (CPU2006) experiment predictions both ways byte for byte, and
//! check the engine's row-accounting telemetry.

use std::sync::Mutex;

use modeltree::{CompiledTree, ModelTree, Precision};
use testkit::corner_lattice;
use testkit::generators::differential_dataset;

/// Serializes tests that flip the process-global telemetry switch
/// (same pattern as the observability suite; integration-test files
/// are separate processes, so cross-file interference is impossible).
static TELEMETRY: Mutex<()> = Mutex::new(());

struct Guard;

impl Guard {
    fn acquire() -> (std::sync::MutexGuard<'static, ()>, Guard) {
        let lock = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
        obskit::set_enabled(false, false);
        obskit::metrics::reset();
        obskit::span::reset();
        (lock, Guard)
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        obskit::set_enabled(false, false);
        obskit::metrics::reset();
        obskit::span::reset();
    }
}

fn assert_bitwise_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: row {i}: {x} vs {y}");
    }
}

/// SIMD on vs off across the differential corner lattice: predictions,
/// classifications, and subset predictions must agree bit for bit,
/// including at block sizes that leave lane tails on every block.
#[test]
fn simd_engine_is_bit_identical_across_corner_lattice() {
    let corners = corner_lattice();
    for d in 0..12 {
        let data = differential_dataset(d);
        for corner in corners.iter().step_by(5) {
            let tree = ModelTree::fit(&data, &corner.config).unwrap();
            let scalar = CompiledTree::new(&tree).with_n_threads(1).with_simd(false);
            let simd = CompiledTree::new(&tree).with_n_threads(1).with_simd(true);
            let p_scalar = scalar.predict_batch(&data);
            let p_simd = simd.predict_batch(&data);
            assert_bitwise_equal(
                &p_scalar,
                &p_simd,
                &format!("dataset {d} [{}]", corner.name),
            );
            assert_eq!(
                scalar.classify_batch(&data),
                simd.classify_batch(&data),
                "dataset {d} [{}]: classify diverged",
                corner.name
            );
            // Stride-3 subset exercises the gathered (index-list) path.
            let subset: Vec<u32> = (0..data.len() as u32).step_by(3).collect();
            assert_bitwise_equal(
                &scalar.predict_indices(&data, &subset),
                &simd.predict_indices(&data, &subset),
                &format!("dataset {d} [{}] indices", corner.name),
            );
            // Tiny blocks force lane tails and multi-block descent on
            // every batch; results must not move.
            for rows in [8usize, 64] {
                let small = CompiledTree::new(&tree)
                    .with_n_threads(1)
                    .with_simd(true)
                    .with_block_rows(rows);
                assert_bitwise_equal(
                    &p_scalar,
                    &small.predict_batch(&data),
                    &format!("dataset {d} [{}] block_rows={rows}", corner.name),
                );
            }
        }
    }
}

/// Lane-tail edge shapes: batch sizes around every lane boundary, the
/// single row, and sizes that leave each possible tail length.
#[test]
fn lane_tails_and_tiny_batches_are_bit_identical() {
    let data = differential_dataset(3);
    let config = corner_lattice()[0].config;
    let tree = ModelTree::fit(&data, &config).unwrap();
    let scalar = CompiledTree::new(&tree).with_n_threads(1).with_simd(false);
    let simd = CompiledTree::new(&tree).with_n_threads(1).with_simd(true);
    for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 33, 63, 65] {
        if n > data.len() {
            break;
        }
        let subset: Vec<u32> = (0..n as u32).collect();
        assert_bitwise_equal(
            &scalar.predict_indices(&data, &subset),
            &simd.predict_indices(&data, &subset),
            &format!("n={n}"),
        );
    }
}

/// The canonical E2 (CPU2006 60k-sample) experiment predictions: the
/// engine that produced the checked-in `results/` artifacts must emit
/// byte-for-byte identical predictions with the vectorized kernels on
/// and off. This is the end-to-end guard behind the CI matrix's
/// `SPECREPRO_NO_SIMD` legs.
#[test]
fn e2_predictions_are_byte_identical_with_simd_on_and_off() {
    let data = spec_bench::cpu2006_dataset();
    let tree = spec_bench::fit_suite_tree(&data);
    let scalar = tree.compile().with_n_threads(1).with_simd(false);
    let simd = tree.compile().with_n_threads(1).with_simd(true);
    let p_scalar = scalar.predict_batch(&data);
    let p_simd = simd.predict_batch(&data);
    // Byte-for-byte: compare the raw little-endian rendering, the same
    // bytes any serialized artifact of these predictions would contain.
    let bytes = |p: &[f64]| -> Vec<u8> { p.iter().flat_map(|v| v.to_le_bytes()).collect() };
    assert_eq!(
        bytes(&p_scalar),
        bytes(&p_simd),
        "E2 predictions changed bytes under SIMD"
    );
    // And the parallel engine agrees too, regardless of chunking.
    let parallel = tree.compile().with_n_threads(4).with_simd(true);
    assert_bitwise_equal(&p_scalar, &parallel.predict_batch(&data), "parallel E2");
}

/// The quantized `f32` fast path must stay within its analytic
/// per-leaf error bound wherever both precisions agree on the leaf,
/// and the overwhelming majority of rows must be comparable.
#[test]
fn f32_fast_path_respects_published_bound() {
    for d in [0usize, 5, 9] {
        let data = differential_dataset(d);
        let config = corner_lattice()[0].config;
        let tree = ModelTree::fit(&data, &config).unwrap();
        let exact = CompiledTree::new(&tree).with_n_threads(1).with_simd(false);
        let fast = CompiledTree::new(&tree)
            .with_n_threads(1)
            .with_precision(Precision::F32Fast);
        let p_exact = exact.predict_batch(&data);
        let p_fast = fast.predict_batch(&data);
        let mut comparable = 0usize;
        for (i, (sample, _)) in data.iter().enumerate() {
            if fast.classify(sample) == exact.classify(sample) {
                let bound = fast
                    .f32_error_bound(sample)
                    .expect("quantized engines publish bounds");
                let err = (p_exact[i] - p_fast[i]).abs();
                assert!(
                    err <= bound,
                    "dataset {d} row {i}: f32 error {err:e} above bound {bound:e}"
                );
                comparable += 1;
            }
        }
        assert!(
            comparable * 10 >= data.len() * 9,
            "dataset {d}: only {comparable}/{} rows comparable",
            data.len()
        );
    }
}

/// Engine row accounting: over a full batch every row is evaluated at
/// exactly one leaf, so `engine.simd_rows + engine.scalar_tail_rows`
/// must equal the batch size — for the f64 kernel and the f32 fast
/// path alike.
#[test]
fn simd_counters_account_for_every_row() {
    use obskit::metrics::{value, Metric};
    let (_lock, _guard) = Guard::acquire();
    let base = differential_dataset(1);
    let config = corner_lattice()[0].config;
    let tree = ModelTree::fit(&base, &config).unwrap();
    // Tile the rows so every leaf sees full vector lanes (the base
    // differential datasets are deliberately tiny).
    let mut data = perfcounters::Dataset::new();
    let label = data.add_benchmark("tiled");
    for _ in 0..32 {
        for (sample, _) in base.iter() {
            data.push(sample.clone(), label);
        }
    }

    for (name, engine) in [
        (
            "f64",
            CompiledTree::new(&tree).with_n_threads(1).with_simd(true),
        ),
        (
            "f32",
            CompiledTree::new(&tree)
                .with_n_threads(1)
                .with_precision(Precision::F32Fast),
        ),
    ] {
        obskit::metrics::reset();
        obskit::set_enabled(true, false);
        let out = engine.predict_batch(&data);
        obskit::set_enabled(false, false);
        assert_eq!(out.len(), data.len());
        let simd_rows = value(Metric::EngineSimdRows);
        let tail_rows = value(Metric::EngineScalarTailRows);
        assert_eq!(
            simd_rows + tail_rows,
            data.len() as u64,
            "{name}: simd {simd_rows} + tail {tail_rows} != batch {}",
            data.len()
        );
        assert!(simd_rows > 0, "{name}: no rows took the vector path");
    }

    // The scalar oracle engine records no vector-lane rows.
    obskit::metrics::reset();
    obskit::set_enabled(true, false);
    let scalar = CompiledTree::new(&tree).with_n_threads(1).with_simd(false);
    let _ = scalar.predict_batch(&data);
    obskit::set_enabled(false, false);
    assert_eq!(value(Metric::EngineSimdRows), 0);
    assert_eq!(value(Metric::EngineScalarTailRows), 0);
}
