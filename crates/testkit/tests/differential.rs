//! Differential verification: the optimized M5' trainer against the
//! naive reference oracle, across the full configuration lattice and a
//! pool of generated datasets (including adversarial shapes).
//!
//! The contract is strict:
//!
//! * trained trees are **bit-identical** to the reference — structure,
//!   split events, thresholds, node statistics, and model coefficients
//!   compared via `to_bits` (smoothing and thread count must not affect
//!   training at all);
//! * interpreter predictions are **bit-identical** to the reference
//!   walk, smoothing on or off;
//! * the compiled batch engine (which algebraically folds the smoothing
//!   chain into flat per-leaf models) agrees bit-for-bit with smoothing
//!   off and to `<= 1e-10` relative error with smoothing on.
//!
//! Smoke mode covers 100 datasets x 24 corners on every push;
//! `TESTKIT_FULL=1` deepens the pool to 300.

use std::collections::BTreeMap;

use modeltree::{CompiledTree, ModelTree};
use testkit::generators::differential_dataset;
use testkit::reference::RefTree;
use testkit::{close_to, corner_lattice, n_differential_datasets, training_key};

#[test]
fn optimized_trainer_is_bit_identical_to_reference_oracle() {
    let corners = corner_lattice();
    assert!(corners.len() >= 16);
    let n_datasets = n_differential_datasets();
    let mut n_tree_comparisons = 0usize;
    let mut n_prediction_checks = 0usize;

    for d in 0..n_datasets {
        let data = differential_dataset(d);
        // Smoothing and thread count do not affect training, so one
        // reference fit serves every corner sharing a training key.
        let mut references: BTreeMap<_, RefTree> = BTreeMap::new();

        for corner in &corners {
            let reference = references
                .entry(training_key(&corner.config))
                .or_insert_with(|| {
                    RefTree::fit(&data, &corner.config).unwrap_or_else(|e| {
                        panic!("reference fit failed on dataset {d} [{}]: {e}", corner.name)
                    })
                });
            let tree = ModelTree::fit(&data, &corner.config).unwrap_or_else(|e| {
                panic!("optimized fit failed on dataset {d} [{}]: {e}", corner.name)
            });
            if let Err(mismatch) = reference.assert_matches(&tree) {
                panic!(
                    "dataset {d} (n={}) [{}]: optimized tree diverged from reference\n  {mismatch}",
                    data.len(),
                    corner.name
                );
            }
            n_tree_comparisons += 1;

            // Interpreter predictions: bit-identical, smoothing on or
            // off (both sides walk the same chain in the same order).
            let engine = CompiledTree::new(&tree);
            for (i, (sample, _)) in data.iter().enumerate() {
                let want = reference.predict_with_smoothing(sample, corner.config.smoothing);
                let got = tree.predict(sample);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "dataset {d} row {i} [{}]: interpreter {got} vs reference {want}",
                    corner.name
                );
                // Compiled engine: exact without smoothing; the folded
                // smoothing chain reassociates, so within 1e-10 with it.
                let compiled = engine.predict(sample);
                if corner.config.smoothing {
                    if let Err(msg) = close_to(compiled, want, 1e-10) {
                        panic!(
                            "dataset {d} row {i} [{}]: compiled engine diverged: {msg}",
                            corner.name
                        );
                    }
                } else {
                    assert_eq!(
                        compiled.to_bits(),
                        want.to_bits(),
                        "dataset {d} row {i} [{}]: compiled {compiled} vs reference {want}",
                        corner.name
                    );
                }
                n_prediction_checks += 1;
            }
        }
    }

    assert!(
        n_tree_comparisons >= 16 * 100,
        "sweep too shallow: {n_tree_comparisons} tree comparisons"
    );
    assert!(n_prediction_checks > 0);
}

/// `fit_indices` over the identity permutation must match a plain `fit`
/// — and therefore the reference — bit for bit.
#[test]
fn fit_indices_identity_matches_reference() {
    let corners = corner_lattice();
    for d in 0..10 {
        let data = differential_dataset(d);
        let indices: Vec<u32> = (0..data.len() as u32).collect();
        for corner in corners.iter().step_by(5) {
            let reference = RefTree::fit(&data, &corner.config).unwrap();
            let tree = ModelTree::fit_indices(&data, &indices, &corner.config).unwrap();
            if let Err(mismatch) = reference.assert_matches(&tree) {
                panic!(
                    "dataset {d} [{}]: fit_indices diverged: {mismatch}",
                    corner.name
                );
            }
        }
    }
}

/// The reference must also agree with the optimized trainer's own
/// training-error accounting.
#[test]
fn training_error_agrees_with_reference_predictions() {
    for d in 0..20 {
        let data = differential_dataset(d);
        let config = corner_lattice()[0].config;
        let reference = RefTree::fit(&data, &config).unwrap();
        let tree = ModelTree::fit(&data, &config).unwrap();
        let mae_ref: f64 = data
            .iter()
            .map(|(s, _)| (reference.predict(s) - s.cpi()).abs())
            .sum::<f64>()
            / data.len() as f64;
        let mae_opt = tree.mean_abs_error(&data);
        if let Err(msg) = close_to(mae_ref, mae_opt, 1e-12) {
            panic!("dataset {d}: training MAE diverged: {msg}");
        }
    }
}
