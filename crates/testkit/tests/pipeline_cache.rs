//! Cache-identity verification for the pipeline's artifact store.
//!
//! The store's contract is **bit-identity**: resolving a spec against a
//! warm store must return exactly the bytes the cold computation
//! produced — every float compared via `to_bits`, across the same M5'
//! configuration lattice the differential suite sweeps — while the
//! stage counters prove the warm path did zero dataset generation and
//! zero tree fitting. Every test uses its own explicit temp-dir store
//! (never the environment-selected one), so cold runs are really cold.

use modeltree::ModelTree;
use perfcounters::{Dataset, EventId};
use pipeline::{
    ArtifactStore, DatasetSpec, PipelineContext, SuiteKind, TransferSplitSpec, TreeSpec,
};
use testkit::corner_lattice;
use testkit::generators::differential_dataset;

fn temp_store(tag: &str) -> ArtifactStore {
    let dir =
        std::env::temp_dir().join(format!("specrepro-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactStore::open(dir)
}

/// Bit-exact dataset comparison: column floats via `to_bits`, labels
/// and the name table verbatim. Stricter than `PartialEq` (which treats
/// `-0.0 == 0.0` and can't see NaN payloads).
fn assert_bit_identical_datasets(a: &Dataset, b: &Dataset, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    assert_eq!(
        a.benchmark_names(),
        b.benchmark_names(),
        "{what}: name table"
    );
    let (ca, cb) = (a.columns(), b.columns());
    for (i, (x, y)) in ca.cpi().iter().zip(cb.cpi()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: cpi[{i}]");
    }
    for e in EventId::ALL {
        for (i, (x, y)) in ca.event(e).iter().zip(cb.event(e)).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {}[{i}]", e.short_name());
        }
    }
    for i in 0..a.len() {
        assert_eq!(a.label(i), b.label(i), "{what}: label[{i}]");
    }
}

/// Bit-exact tree comparison via the canonical serde rendering (floats
/// round-trip exactly through it — that is the codec's own invariant,
/// enforced in the pipeline unit tests).
fn assert_bit_identical_trees(a: &ModelTree, b: &ModelTree, what: &str) {
    let ja = serde_json::to_string(a).expect("tree serializes");
    let jb = serde_json::to_string(b).expect("tree serializes");
    assert_eq!(ja, jb, "{what}: serialized trees differ");
}

#[test]
fn warm_dataset_is_bit_identical_and_generates_nothing() {
    let store = temp_store("dataset-bits");
    for spec in [
        DatasetSpec::new(SuiteKind::cpu2006(), 900, 7),
        DatasetSpec::new(SuiteKind::omp2001(), 700, 8).with_memory_pressure(0.6),
        DatasetSpec::new(SuiteKind::cpu2006(), 500, 9).with_benchmark("429.mcf"),
    ] {
        let cold = PipelineContext::with_store(store.clone());
        let first = cold.dataset(&spec).expect("generates");
        assert_eq!(cold.counters().datasets_generated, 1);

        let warm = PipelineContext::with_store(store.clone());
        let second = warm.dataset(&spec).expect("loads");
        let c = warm.counters();
        assert_eq!(c.datasets_generated, 0, "warm run generated a dataset");
        assert_eq!(c.datasets_loaded, 1);
        assert_bit_identical_datasets(&first, &second, &spec.describe());
    }
    store.clear().unwrap();
}

#[test]
fn warm_trees_are_bit_identical_across_the_corner_lattice() {
    let store = temp_store("tree-lattice");
    let spec = DatasetSpec::new(SuiteKind::cpu2006(), 600, 11);

    let cold = PipelineContext::with_store(store.clone());
    let warm = PipelineContext::with_store(store.clone());
    for corner in corner_lattice() {
        let tree_spec = TreeSpec::new(spec.clone(), corner.config);
        let first = cold.tree(&tree_spec).expect("fits");
        let second = warm.tree(&tree_spec).expect("loads");
        assert_bit_identical_trees(&first, &second, &corner.name);
    }
    let c = warm.counters();
    assert_eq!(c.trees_fitted, 0, "warm lattice refit a tree");
    assert_eq!(c.datasets_generated, 0, "warm lattice regenerated data");
    // Corners differing only in smoothing-independent execution hints
    // (n_threads) share artifacts, so strictly fewer loads than corners.
    assert!(c.trees_loaded > 0);
    store.clear().unwrap();
}

#[test]
fn external_datasets_cache_through_content_fingerprints() {
    let store = temp_store("external");
    // The differential generator covers adversarial shapes (constant
    // columns, duplicates, near-degenerate targets) — exactly the data
    // most likely to expose codec or fingerprint instability.
    for d in 0..4 {
        let data = differential_dataset(d);
        for corner in corner_lattice().into_iter().step_by(7) {
            let cold = PipelineContext::with_store(store.clone());
            let first = cold.tree_for(&data, &corner.config).expect("fits");
            let warm = PipelineContext::with_store(store.clone());
            let second = warm.tree_for(&data, &corner.config).expect("loads");
            assert_eq!(
                warm.counters().trees_fitted,
                0,
                "dataset {d} [{}]: warm run refit",
                corner.name
            );
            assert_bit_identical_trees(&first, &second, &corner.name);
        }
    }
    store.clear().unwrap();
}

#[test]
fn transfer_protocol_replays_bit_identically() {
    let store = temp_store("transfer-bits");
    let spec = TransferSplitSpec {
        cpu: DatasetSpec::new(SuiteKind::cpu2006(), 800, 21),
        omp: DatasetSpec::new(SuiteKind::omp2001(), 600, 22),
        seed: 23,
        fraction: 0.10,
    };
    let cold = PipelineContext::with_store(store.clone());
    let first = cold.transfer_split(&spec).expect("generates");

    let warm = PipelineContext::with_store(store.clone());
    let second = warm.transfer_split(&spec).expect("loads");
    let c = warm.counters();
    assert_eq!(c.datasets_generated, 0);
    assert_eq!(c.splits_computed, 0);
    assert_eq!(c.datasets_loaded, 4);
    for (a, b, what) in [
        (&first.cpu_train, &second.cpu_train, "cpu_train"),
        (&first.cpu_rest, &second.cpu_rest, "cpu_rest"),
        (&first.omp_train, &second.omp_train, "omp_train"),
        (&first.omp_rest, &second.omp_rest, "omp_rest"),
    ] {
        assert_bit_identical_datasets(a, b, what);
    }
    store.clear().unwrap();
}

#[test]
fn corrupted_and_truncated_artifacts_fall_back_to_recompute() {
    let store = temp_store("corruption");
    let spec = DatasetSpec::new(SuiteKind::cpu2006(), 400, 31);
    let cold = PipelineContext::with_store(store.clone());
    let original = cold.dataset(&spec).expect("generates");

    let dir = store
        .root()
        .join(format!("v{}", pipeline::SCHEMA_VERSION))
        .join("datasets");
    let path = std::fs::read_dir(&dir)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();

    // Corruption: flip one payload byte.
    let pristine = std::fs::read(&path).unwrap();
    let mut corrupt = pristine.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    std::fs::write(&path, &corrupt).unwrap();
    let healed = PipelineContext::with_store(store.clone());
    let recomputed = healed.dataset(&spec).expect("recomputes");
    assert_eq!(healed.counters().corrupt_evicted, 1);
    assert_eq!(healed.counters().datasets_generated, 1);
    assert_bit_identical_datasets(&original, &recomputed, "after corruption");

    // Truncation: drop the integrity-hash tail.
    std::fs::write(&path, &pristine[..pristine.len() - 5]).unwrap();
    let healed = PipelineContext::with_store(store.clone());
    let recomputed = healed.dataset(&spec).expect("recomputes");
    assert_eq!(healed.counters().corrupt_evicted, 1);
    assert_eq!(healed.counters().datasets_generated, 1);
    assert_bit_identical_datasets(&original, &recomputed, "after truncation");
    store.clear().unwrap();
}

#[test]
fn fingerprints_separate_every_closure_field() {
    // Spec-level key sensitivity is unit-tested in the pipeline crate;
    // this is the end-to-end version: contexts over one shared store
    // must not leak artifacts between adjacent specs.
    let store = temp_store("isolation");
    let a = DatasetSpec::new(SuiteKind::cpu2006(), 300, 41);
    let b = a.clone().with_seed(42);
    let ctx = PipelineContext::with_store(store.clone());
    let da = ctx.dataset(&a).expect("generates");
    let db = ctx.dataset(&b).expect("generates");
    assert_eq!(ctx.counters().datasets_generated, 2, "specs shared a key");
    assert_ne!(
        da.sample(0).cpi().to_bits(),
        db.sample(0).cpi().to_bits(),
        "different seeds produced identical first samples"
    );
    store.clear().unwrap();
}
