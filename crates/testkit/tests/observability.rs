//! Telemetry-determinism verification: obskit is write-only.
//!
//! The observability layer's core contract is that enabling metrics and
//! span tracing changes **nothing** about what the system computes:
//! generated datasets, fitted trees, codec bytes, and artifact
//! fingerprints must be bit-identical whether telemetry is off (the
//! default) or fully on. These tests run the instrumented paths both
//! ways and compare at the bytes level — the same standard the
//! pipeline's cache-identity suite enforces.

use modeltree::{M5Config, ModelTree};
use pipeline::{codec, DatasetSpec, SuiteKind};
use std::sync::Mutex;

/// Serializes tests that flip the process-global telemetry switch.
static TELEMETRY: Mutex<()> = Mutex::new(());

struct Guard;

impl Guard {
    fn acquire() -> (std::sync::MutexGuard<'static, ()>, Guard) {
        let lock = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
        obskit::set_enabled(false, false);
        obskit::metrics::reset();
        obskit::span::reset();
        (lock, Guard)
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        obskit::set_enabled(false, false);
        obskit::metrics::reset();
        obskit::span::reset();
    }
}

#[test]
fn datasets_and_fingerprints_are_bit_identical_with_telemetry_on() {
    let _guard = Guard::acquire();
    let spec = DatasetSpec::new(SuiteKind::cpu2006(), 2_000, 7);

    let fingerprint_off = spec.fingerprint();
    let data_off = spec.compute(1).expect("generation succeeds");
    let bytes_off = codec::encode_dataset(&data_off);

    obskit::set_enabled(true, true);
    let fingerprint_on = spec.fingerprint();
    let data_on = spec.compute(1).expect("generation succeeds");
    let bytes_on = codec::encode_dataset(&data_on);
    obskit::set_enabled(false, false);

    assert_eq!(
        fingerprint_off, fingerprint_on,
        "telemetry leaked into the dataset fingerprint"
    );
    assert_eq!(
        bytes_off, bytes_on,
        "telemetry changed the encoded dataset bytes"
    );
    // The telemetry pass actually recorded something — this is not a
    // vacuous comparison between two disabled runs.
    assert!(
        obskit::metrics::value(obskit::metrics::Metric::PmuIntervals) > 0,
        "telemetry-on pass recorded no PMU intervals"
    );
}

#[test]
fn trees_and_their_codec_bytes_are_bit_identical_with_telemetry_on() {
    let _guard = Guard::acquire();
    let spec = DatasetSpec::new(SuiteKind::omp2001(), 2_000, 11);
    let data = spec.compute(1).expect("generation succeeds");
    let config = M5Config::default().with_min_leaf(20);

    let tree_off = ModelTree::fit(&data, &config).expect("fit succeeds");
    let bytes_off = codec::encode_tree(&tree_off);

    obskit::set_enabled(true, true);
    let tree_on = ModelTree::fit(&data, &config).expect("fit succeeds");
    let bytes_on = codec::encode_tree(&tree_on);
    obskit::set_enabled(false, false);

    assert_eq!(
        serde_json::to_string(&tree_off).unwrap(),
        serde_json::to_string(&tree_on).unwrap(),
        "telemetry changed the fitted tree"
    );
    assert_eq!(
        bytes_off, bytes_on,
        "telemetry changed the tree codec bytes"
    );
    assert!(
        obskit::metrics::value(obskit::metrics::Metric::TrainerNodesExpanded) > 0,
        "telemetry-on fit recorded no expanded nodes"
    );

    // Predictions through the compiled engine are bit-identical too.
    let engine_off = tree_off.compile();
    let pred_off = engine_off.predict_batch(&data);
    obskit::set_enabled(true, true);
    let pred_on = tree_on.compile().predict_batch(&data);
    obskit::set_enabled(false, false);
    assert!(
        pred_off
            .iter()
            .zip(&pred_on)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "telemetry changed compiled predictions"
    );
}

/// The PR-10 extension of the contract: the flight recorder, request
/// sampling, and holdout publication are write-only too. Container
/// bytes, refit trees, and their holdout MAEs are bit-identical with
/// the whole observability stack armed.
#[test]
fn container_bytes_and_refits_bit_identical_with_flight_ring_armed() {
    use pipeline::ArtifactStore;
    use std::io::Cursor;
    use stream::{run_stream, windowed_refit, FleetConfig, RefitConfig, StreamConfig};

    let _guard = Guard::acquire();
    let scfg = StreamConfig::new(FleetConfig::cpu2006(30, 8, 9))
        .with_shards(2)
        .with_chunk_rows(32);
    let dir = std::env::temp_dir().join(format!("specrepro-obs-ring-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let seal = |tag: &str| -> Vec<u8> {
        let path = dir.join(format!("{tag}.spdc"));
        run_stream(&scfg, &path).expect("stream seals");
        std::fs::read(&path).expect("container readable")
    };
    let refit_cfg = RefitConfig::new(120, M5Config::default().with_min_leaf(10));

    let bytes_off = seal("off");
    let store_off = ArtifactStore::open(dir.join("store-off"));
    let mut reader = pipeline::chunked::ChunkedReader::open(Cursor::new(&bytes_off)).unwrap();
    let fits_off = windowed_refit(&mut reader, &store_off, &refit_cfg).expect("refit");

    obskit::set_enabled(true, true);
    obskit::set_ring_enabled(true);
    serve::set_trace_sample(1);
    let bytes_on = seal("on");
    let store_on = ArtifactStore::open(dir.join("store-on"));
    let mut reader = pipeline::chunked::ChunkedReader::open(Cursor::new(&bytes_on)).unwrap();
    let fits_on = windowed_refit(&mut reader, &store_on, &refit_cfg).expect("refit");
    obskit::set_ring_enabled(false);
    obskit::set_enabled(false, false);

    assert_eq!(
        bytes_off, bytes_on,
        "the armed flight recorder changed sealed container bytes"
    );
    assert_eq!(fits_off.len(), fits_on.len());
    for (off, on) in fits_off.iter().zip(&fits_on) {
        assert_eq!(off.fingerprint, on.fingerprint, "window keys diverged");
        assert_eq!(
            codec::encode_tree(&off.tree),
            codec::encode_tree(&on.tree),
            "refit tree bytes diverged with the recorder armed"
        );
        match (&off.holdout, &on.holdout) {
            (Some(a), Some(b)) => {
                assert_eq!(a.rows, b.rows);
                assert_eq!(a.mae.to_bits(), b.mae.to_bits(), "holdout MAE diverged");
            }
            (None, None) => {}
            other => panic!("holdout presence diverged: {other:?}"),
        }
    }

    // Non-vacuous: the armed pass actually recorded refit breadcrumbs.
    let (events, _) = obskit::ring::snapshot_events();
    assert!(
        events
            .iter()
            .any(|e| e.kind == obskit::ring::FlightKind::RefitWindow),
        "armed refit recorded no RefitWindow flight events"
    );
    obskit::ring::reset();
    let _ = std::fs::remove_dir_all(&dir);
}
