//! Telemetry-determinism verification: obskit is write-only.
//!
//! The observability layer's core contract is that enabling metrics and
//! span tracing changes **nothing** about what the system computes:
//! generated datasets, fitted trees, codec bytes, and artifact
//! fingerprints must be bit-identical whether telemetry is off (the
//! default) or fully on. These tests run the instrumented paths both
//! ways and compare at the bytes level — the same standard the
//! pipeline's cache-identity suite enforces.

use modeltree::{M5Config, ModelTree};
use pipeline::{codec, DatasetSpec, SuiteKind};
use std::sync::Mutex;

/// Serializes tests that flip the process-global telemetry switch.
static TELEMETRY: Mutex<()> = Mutex::new(());

struct Guard;

impl Guard {
    fn acquire() -> (std::sync::MutexGuard<'static, ()>, Guard) {
        let lock = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
        obskit::set_enabled(false, false);
        obskit::metrics::reset();
        obskit::span::reset();
        (lock, Guard)
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        obskit::set_enabled(false, false);
        obskit::metrics::reset();
        obskit::span::reset();
    }
}

#[test]
fn datasets_and_fingerprints_are_bit_identical_with_telemetry_on() {
    let _guard = Guard::acquire();
    let spec = DatasetSpec::new(SuiteKind::cpu2006(), 2_000, 7);

    let fingerprint_off = spec.fingerprint();
    let data_off = spec.compute(1).expect("generation succeeds");
    let bytes_off = codec::encode_dataset(&data_off);

    obskit::set_enabled(true, true);
    let fingerprint_on = spec.fingerprint();
    let data_on = spec.compute(1).expect("generation succeeds");
    let bytes_on = codec::encode_dataset(&data_on);
    obskit::set_enabled(false, false);

    assert_eq!(
        fingerprint_off, fingerprint_on,
        "telemetry leaked into the dataset fingerprint"
    );
    assert_eq!(
        bytes_off, bytes_on,
        "telemetry changed the encoded dataset bytes"
    );
    // The telemetry pass actually recorded something — this is not a
    // vacuous comparison between two disabled runs.
    assert!(
        obskit::metrics::value(obskit::metrics::Metric::PmuIntervals) > 0,
        "telemetry-on pass recorded no PMU intervals"
    );
}

#[test]
fn trees_and_their_codec_bytes_are_bit_identical_with_telemetry_on() {
    let _guard = Guard::acquire();
    let spec = DatasetSpec::new(SuiteKind::omp2001(), 2_000, 11);
    let data = spec.compute(1).expect("generation succeeds");
    let config = M5Config::default().with_min_leaf(20);

    let tree_off = ModelTree::fit(&data, &config).expect("fit succeeds");
    let bytes_off = codec::encode_tree(&tree_off);

    obskit::set_enabled(true, true);
    let tree_on = ModelTree::fit(&data, &config).expect("fit succeeds");
    let bytes_on = codec::encode_tree(&tree_on);
    obskit::set_enabled(false, false);

    assert_eq!(
        serde_json::to_string(&tree_off).unwrap(),
        serde_json::to_string(&tree_on).unwrap(),
        "telemetry changed the fitted tree"
    );
    assert_eq!(
        bytes_off, bytes_on,
        "telemetry changed the tree codec bytes"
    );
    assert!(
        obskit::metrics::value(obskit::metrics::Metric::TrainerNodesExpanded) > 0,
        "telemetry-on fit recorded no expanded nodes"
    );

    // Predictions through the compiled engine are bit-identical too.
    let engine_off = tree_off.compile();
    let pred_off = engine_off.predict_batch(&data);
    obskit::set_enabled(true, true);
    let pred_on = tree_on.compile().predict_batch(&data);
    obskit::set_enabled(false, false);
    assert!(
        pred_off
            .iter()
            .zip(&pred_on)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "telemetry changed compiled predictions"
    );
}
