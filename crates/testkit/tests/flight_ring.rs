//! Property tests for the obskit flight-recorder ring.
//!
//! The recorder's contract under fire: writers never block, never
//! allocate, and never tear a record — a reader snapshot contains only
//! payloads some writer wrote in full. Wraparound keeps the most
//! recent records: a single writer that overflows its segment must
//! find exactly the last `SLOTS_PER_SEGMENT` records, in write order.
//! Concurrency (1, 2, and 8 writer threads) must preserve per-thread
//! write order and the payload-integrity invariant, with every record
//! either surfaced or counted dropped — never silently lost.

use std::sync::Mutex;

use obskit::ring::{self, FlightKind, SLOTS_PER_SEGMENT};
use proptest::prelude::*;

/// The ring is process-global; cases must not interleave.
static RING: Mutex<()> = Mutex::new(());

/// Derives the `b`/`c` payload words from `a` — the integrity
/// invariant a torn record would violate (a stale word from a previous
/// occupancy of the slot cannot satisfy it for the new `a`).
fn payload(a: u64) -> (u64, u64) {
    let b = a.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (b, a ^ b ^ FlightKind::Probe as u64)
}

fn record_probe(a: u64) {
    let (b, c) = payload(a);
    ring::record(FlightKind::Probe, a, b, c);
}

fn check_integrity(events: &[ring::FlightEvent]) -> Result<(), TestCaseError> {
    for e in events {
        prop_assert_eq!(e.kind, FlightKind::Probe);
        let (b, c) = payload(e.a);
        prop_assert!(e.b == b, "torn record: b does not match a={}", e.a);
        prop_assert!(e.c == c, "torn record: c does not match a={}", e.a);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_writer_wraparound_keeps_most_recent_in_order(
        n in 1usize..3 * SLOTS_PER_SEGMENT,
    ) {
        let _guard = RING.lock().unwrap_or_else(|e| e.into_inner());
        ring::reset();
        obskit::set_ring_enabled(true);
        for i in 0..n {
            record_probe(i as u64);
        }
        obskit::set_ring_enabled(false);
        let (events, dropped) = ring::snapshot_events();
        prop_assert!(dropped == 0, "single writer never contends");

        // One thread writes one segment: the snapshot is exactly the
        // most recent min(n, SLOTS_PER_SEGMENT) records, in order.
        let expect = n.min(SLOTS_PER_SEGMENT);
        prop_assert_eq!(events.len(), expect);
        check_integrity(&events)?;
        for (offset, e) in events.iter().enumerate() {
            prop_assert_eq!(e.a, (n - expect + offset) as u64);
        }
        for pair in events.windows(2) {
            prop_assert!(pair[0].ord < pair[1].ord, "snapshot out of order");
        }
    }

    #[test]
    fn concurrent_writers_never_tear_and_preserve_per_thread_order(
        per_thread in 1usize..600,
        threads_pick in 0usize..3,
    ) {
        let threads = [1usize, 2, 8][threads_pick];
        let _guard = RING.lock().unwrap_or_else(|e| e.into_inner());
        ring::reset();
        obskit::set_ring_enabled(true);
        // Tag the writer in the high bits of `a` so surviving records
        // can be attributed; the payload invariant still covers the
        // whole word.
        let tag = |t: usize, i: usize| ((t as u64) << 32) | i as u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for i in 0..per_thread {
                        record_probe(tag(t, i));
                    }
                });
            }
        });
        obskit::set_ring_enabled(false);
        let (events, dropped) = ring::snapshot_events();

        // No torn records, regardless of contention.
        check_integrity(&events)?;

        // Global ord tickets are unique and the snapshot is sorted.
        for pair in events.windows(2) {
            prop_assert!(pair[0].ord < pair[1].ord, "snapshot out of order");
        }

        // Per-thread write order survives: each writer's surviving
        // records appear with strictly increasing sequence numbers.
        for t in 0..threads {
            let seq: Vec<u64> = events
                .iter()
                .filter(|e| e.a >> 32 == t as u64)
                .map(|e| e.a & 0xFFFF_FFFF)
                .collect();
            prop_assert!(
                seq.windows(2).all(|p| p[0] < p[1]),
                "thread {} order violated: {:?}",
                t,
                seq
            );
        }

        // Accounting: everything written is surfaced or counted
        // dropped; the ring never surfaces more than was written.
        let written = (threads * per_thread) as u64;
        prop_assert!(events.len() as u64 + dropped <= written);
        prop_assert!(events.len() as u64 <= ring::CAPACITY as u64);
    }
}
