//! Facade over the full SPEC CPU2006 / SPEC OMP2001 characterization
//! reproduction.
//!
//! This crate re-exports every workspace crate so applications can
//! depend on one name, and hosts the workspace-level examples and
//! integration tests. The pipeline, end to end:
//!
//! 1. [`workloads`] generates PMU interval datasets for the synthetic
//!    SPEC CPU2006 / SPEC OMP2001 suites through [`perfcounters`]'s
//!    multiplexed counter simulator.
//! 2. [`modeltree`] fits an M5' model tree linking CPI to the Table I
//!    events.
//! 3. [`characterize`] classifies samples through the tree into
//!    per-benchmark leaf profiles, similarity matrices, and subsets.
//! 4. [`transfer`] (with [`spec_stats`]) assesses whether a model built
//!    on one suite transfers to another.
//! 5. [`baselines`] provides the comparison regressors.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use spec_suite_repro::prelude::*;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let data = Suite::cpu2006().generate(&mut rng, 2_000, &GeneratorConfig::default());
//! let tree = ModelTree::fit(&data, &M5Config::default()).unwrap();
//! assert!(tree.n_leaves() >= 1);
//! ```

pub use baselines;
pub use characterize;
pub use mathkit;
pub use modeltree;
pub use perfcounters;
pub use spec_stats;
pub use transfer;
pub use workloads;

/// One-stop imports for the common pipeline.
pub mod prelude {
    pub use baselines::{KnnRegressor, OlsRegressor, RegressionTree, Regressor};
    pub use characterize::{LeafProfile, ProfileTable, SimilarityMatrix};
    pub use modeltree::{display, M5Config, ModelTree};
    pub use perfcounters::{Dataset, EventId, Sample};
    pub use spec_stats::{AcceptanceThresholds, PredictionMetrics};
    pub use transfer::{TransferConfig, TransferabilityReport};
    pub use workloads::generator::{GeneratorConfig, Suite};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Touch one item from each re-exported crate.
        let _ = crate::prelude::M5Config::default();
        let _ = crate::prelude::GeneratorConfig::default();
        let _ = crate::prelude::AcceptanceThresholds::default();
        let _ = perfcounters::events::N_EVENTS;
    }
}
