//! Command implementations for the `specrepro` CLI.
//!
//! Each subcommand is a plain function from parsed arguments to a
//! rendered `String`, so the whole surface is unit-testable without
//! spawning processes. [`run`] dispatches a raw argument vector.
//!
//! ```text
//! specrepro generate --suite cpu2006 --samples 60000 --seed 1 --out data.csv
//! specrepro fit      --data data.csv --min-leaf 300 --out model.json --print summary
//! specrepro predict  --model model.json --data other.csv
//! specrepro classify --model model.json --data data.csv
//! specrepro transfer --model model.json --train data.csv --test other.csv
//! specrepro subset   --model model.json --data data.csv --k 6
//! specrepro crossval --data data.csv --folds 5
//! specrepro serve    --model model.json --addr 127.0.0.1:8080
//! specrepro stream   --out fleet.spdc --hosts 1000 --fault-seed 7
//! specrepro cache    stats
//! specrepro trace    --out trace.json fit --data data.csv
//! specrepro metrics  --json fit --data data.csv
//! ```
//!
//! Dataset files are read and written by extension: `.csv`
//! ([`perfcounters::dataset`]), `.arff` ([`perfcounters::arff`]), or
//! `.json` (serde). Models are JSON.
//!
//! `generate` and `fit` resolve through the pipeline's
//! content-addressed artifact store ([`pipeline::ArtifactStore`]), so
//! repeating a command with identical inputs replays cached bytes
//! instead of recomputing; `specrepro cache stats|clear` inspects or
//! deletes the store.

use characterize::{greedy_subset, kmeans_subset, ProfileTable, SimilarityMatrix};
use modeltree::{display, k_fold, M5Config, ModelTree};
use perfcounters::Dataset;
use pipeline::{ArtifactStore, DatasetSpec, PipelineContext, RngStreams, SuiteKind};
use spec_stats::PredictionMetrics;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use transfer::{TransferConfig, TransferabilityReport};

/// A CLI failure: a message suitable for printing to stderr.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

/// Convenience alias for CLI results.
pub type Result<T> = std::result::Result<T, CliError>;

/// Parsed `--flag value` arguments.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs from an argument list.
    ///
    /// # Errors
    ///
    /// Fails on a dangling flag or a token that is not a flag.
    pub fn parse(args: &[String]) -> Result<Flags> {
        let mut values = HashMap::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| CliError(format!("expected --flag, got {arg:?}")))?;
            let value = iter
                .next()
                .ok_or_else(|| CliError(format!("flag --{key} is missing a value")))?;
            values.insert(key.to_owned(), value.clone());
        }
        Ok(Flags { values })
    }

    /// A required flag value.
    ///
    /// # Errors
    ///
    /// Fails when the flag is absent.
    pub fn required(&self, key: &str) -> Result<&str> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("missing required flag --{key}")))
    }

    /// An optional flag value.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// An optional flag parsed into `T`, with a default.
    ///
    /// # Errors
    ///
    /// Fails when present but unparsable.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError(format!("cannot parse --{key} value {raw:?}"))),
        }
    }
}

/// Reads a dataset by file extension (`.csv`, `.arff`, `.json`).
///
/// # Errors
///
/// Fails on unknown extensions, missing files, or parse errors.
pub fn read_dataset(path: &str) -> Result<Dataset> {
    let file =
        std::fs::File::open(path).map_err(|e| CliError(format!("cannot open {path}: {e}")))?;
    let reader = BufReader::new(file);
    match extension(path)? {
        "csv" => Dataset::from_csv(reader).map_err(|e| CliError(format!("{path}: {e}"))),
        "arff" => {
            perfcounters::arff::from_arff(reader).map_err(|e| CliError(format!("{path}: {e}")))
        }
        "json" => serde_json::from_reader(reader).map_err(|e| CliError(format!("{path}: {e}"))),
        other => Err(CliError(format!("unsupported dataset extension .{other}"))),
    }
}

/// Writes a dataset by file extension (`.csv`, `.arff`, `.json`).
///
/// # Errors
///
/// Fails on unknown extensions or I/O errors.
pub fn write_dataset(data: &Dataset, path: &str) -> Result<()> {
    let file =
        std::fs::File::create(path).map_err(|e| CliError(format!("cannot create {path}: {e}")))?;
    let mut writer = BufWriter::new(file);
    match extension(path)? {
        "csv" => data
            .to_csv(&mut writer)
            .map_err(|e| CliError(format!("{path}: {e}"))),
        "arff" => perfcounters::arff::to_arff(data, "spec_dataset", &mut writer)
            .map_err(|e| CliError(format!("{path}: {e}"))),
        "json" => {
            serde_json::to_writer(&mut writer, data).map_err(|e| CliError(format!("{path}: {e}")))
        }
        other => Err(CliError(format!("unsupported dataset extension .{other}"))),
    }
}

fn extension(path: &str) -> Result<&str> {
    Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .ok_or_else(|| CliError(format!("{path} has no file extension")))
}

fn read_model(path: &str) -> Result<ModelTree> {
    let file =
        std::fs::File::open(path).map_err(|e| CliError(format!("cannot open {path}: {e}")))?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| CliError(format!("{path}: not a model tree: {e}")))
}

/// Parses the common `--threads N` flag (default 1; training results are
/// identical for every value, only wall clock changes).
fn parse_threads(flags: &Flags) -> Result<usize> {
    let threads: usize = flags.parsed_or("threads", 1)?;
    if threads == 0 {
        return Err(CliError("--threads must be at least 1".into()));
    }
    Ok(threads)
}

fn suite_by_name(name: &str) -> Result<SuiteKind> {
    SuiteKind::by_tag(name).ok_or_else(|| {
        let registered = SuiteKind::all()
            .iter()
            .map(|k| k.tag())
            .collect::<Vec<_>>()
            .join(", ");
        CliError(format!(
            "unknown suite {name:?} (expected one of: {registered})"
        ))
    })
}

/// `suite list`: render the registered suites as a table.
fn cmd_suite(args: &[String]) -> Result<String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            let mut out = format!(
                "{:<10} {:<14} {:>10} {:>16} {:>10}\n",
                "tag", "name", "generation", "environment", "benchmarks"
            );
            for kind in SuiteKind::all() {
                let suite = kind.materialize();
                out.push_str(&format!(
                    "{:<10} {:<14} {:>10} {:>16} {:>10}\n",
                    kind.tag(),
                    kind.display_name(),
                    kind.generation(),
                    match suite.environment() {
                        workloads::Environment::SingleThreaded => "single-threaded",
                        workloads::Environment::MultiThreaded => "multi-threaded",
                    },
                    suite.benchmarks().len()
                ));
            }
            Ok(out)
        }
        Some(other) => Err(CliError(format!(
            "unknown suite action {other:?} (expected: list)"
        ))),
        None => Err(CliError("usage: specrepro suite list".into())),
    }
}

/// `generate`: synthesize a suite dataset to a file.
///
/// The dataset resolves through the artifact store: a repeated
/// invocation with the same suite, sample count, seed, and stream
/// layout loads the cached bytes instead of regenerating. `--threads 1`
/// keeps the byte-stable sequential stream; higher counts switch to the
/// per-benchmark stream layout (a different, thread-count-invariant
/// dataset), so the two cache under different keys.
///
/// # Errors
///
/// Fails on bad flags or file errors.
pub fn cmd_generate(flags: &Flags) -> Result<String> {
    let kind = suite_by_name(flags.required("suite")?)?;
    let samples: usize = flags.parsed_or("samples", 60_000)?;
    let seed: u64 = flags.parsed_or("seed", 1)?;
    let threads = parse_threads(flags)?;
    let out = flags.required("out")?;
    let mut spec = DatasetSpec::new(kind, samples, seed);
    if threads > 1 {
        spec = spec.with_streams(RngStreams::PerBenchmark);
    }
    let ctx = PipelineContext::from_env().with_gen_threads(threads);
    let data = ctx.dataset(&spec).map_err(|e| CliError(e.to_string()))?;
    write_dataset(&data, out)?;
    Ok(format!(
        "wrote {} samples from {} ({} benchmarks) to {out}",
        data.len(),
        kind.materialize().name(),
        data.benchmark_count()
    ))
}

/// `fit`: train an M5' model tree on a dataset file.
///
/// Training is keyed by the dataset's **content** fingerprint plus the
/// M5' configuration, so refitting an unchanged file (under any name or
/// format) loads the cached tree bit-identically instead of training
/// again. `--threads` is an execution hint outside the key: fitted
/// trees are identical for every thread count.
///
/// # Errors
///
/// Fails on bad flags, file errors, or degenerate training data.
pub fn cmd_fit(flags: &Flags) -> Result<String> {
    let data = read_dataset(flags.required("data")?)?;
    let min_leaf: usize = flags.parsed_or("min-leaf", (data.len() / 200).max(4))?;
    let sd_fraction: f64 = flags.parsed_or("sd-fraction", 0.05)?;
    let config = M5Config::default()
        .with_min_leaf(min_leaf)
        .with_sd_fraction(sd_fraction)
        .with_n_threads(parse_threads(flags)?);
    let ctx = PipelineContext::from_env();
    let tree = ctx
        .tree_for(&data, &config)
        .map_err(|e| CliError(e.to_string()))?;
    if let Some(out) = flags.optional("out") {
        let file = std::fs::File::create(out)
            .map_err(|e| CliError(format!("cannot create {out}: {e}")))?;
        serde_json::to_writer(BufWriter::new(file), &*tree)
            .map_err(|e| CliError(format!("{out}: {e}")))?;
    }
    let mut report = String::new();
    match flags.optional("print").unwrap_or("summary") {
        "summary" => report.push_str(&display::render_summary(&tree)),
        "tree" => report.push_str(&display::render_tree(&tree)),
        "models" => report.push_str(&display::render_models(&tree)),
        "importance" => report.push_str(&display::render_importance(&tree)),
        "dot" => return Ok(display::render_dot(&tree)),
        other => return Err(CliError(format!("unknown --print mode {other:?}"))),
    }
    let _ = write!(report, "training MAE: {:.4}", tree.mean_abs_error(&data));
    Ok(report)
}

/// `predict`: apply a model to a dataset, report accuracy metrics.
///
/// `--engine compiled` (the default) compiles the tree into the flat
/// batch-inference engine — smoothing folded into the leaf models,
/// columnar parallel prediction under `--threads`. `--engine
/// interpreted` walks the tree per sample; the two agree within 1e-10.
///
/// # Errors
///
/// Fails on bad flags or file errors.
pub fn cmd_predict(flags: &Flags) -> Result<String> {
    let tree = read_model(flags.required("model")?)?;
    let data = read_dataset(flags.required("data")?)?;
    let predictions = match flags.optional("engine").unwrap_or("compiled") {
        "compiled" => tree
            .compile()
            .with_n_threads(parse_threads(flags)?)
            .predict_batch(&data),
        "interpreted" => (0..data.len())
            .map(|i| tree.predict(data.sample(i)))
            .collect(),
        other => {
            return Err(CliError(format!(
                "unknown --engine {other:?} (expected compiled or interpreted)"
            )))
        }
    };
    if let Some(out) = flags.optional("out") {
        let mut text = String::from("predicted,actual\n");
        for (p, a) in predictions.iter().zip(data.cpis()) {
            let _ = writeln!(text, "{p},{a}");
        }
        std::fs::write(out, text).map_err(|e| CliError(format!("{out}: {e}")))?;
    }
    let metrics = PredictionMetrics::from_predictions(&predictions, &data.cpis())
        .map_err(|e| CliError(e.to_string()))?;
    Ok(metrics.to_string())
}

/// `classify`: profile a dataset through a model (Table II/IV style).
///
/// # Errors
///
/// Fails on bad flags or file errors.
pub fn cmd_classify(flags: &Flags) -> Result<String> {
    let tree = read_model(flags.required("model")?)?;
    let data = read_dataset(flags.required("data")?)?;
    let table = ProfileTable::build(&tree, &data);
    Ok(table.render())
}

/// `transfer`: assess transferability of a model from train to test.
///
/// # Errors
///
/// Fails on bad flags, file errors, or datasets too small to test.
pub fn cmd_transfer(flags: &Flags) -> Result<String> {
    let tree = read_model(flags.required("model")?)?;
    let train = read_dataset(flags.required("train")?)?;
    let test = read_dataset(flags.required("test")?)?;
    let report = TransferabilityReport::assess(
        &tree,
        &train,
        &test,
        flags.required("train")?,
        flags.required("test")?,
        &TransferConfig::default(),
    )
    .map_err(|e| CliError(e.to_string()))?;
    Ok(report.render())
}

/// `subset`: select representative benchmarks from a profiled dataset.
///
/// # Errors
///
/// Fails on bad flags, file errors, or `k` out of range.
pub fn cmd_subset(flags: &Flags) -> Result<String> {
    let tree = read_model(flags.required("model")?)?;
    let data = read_dataset(flags.required("data")?)?;
    let table = ProfileTable::build(&tree, &data);
    let k: usize = flags.parsed_or("k", 6)?;
    if k == 0 || k > table.names().len() {
        return Err(CliError(format!(
            "--k {k} out of range (1..={})",
            table.names().len()
        )));
    }
    let method = flags.optional("method").unwrap_or("greedy");
    let result = match method {
        "greedy" => greedy_subset(&table, k),
        "kmeans" => kmeans_subset(&table, k, flags.parsed_or("seed", 1u64)?),
        other => return Err(CliError(format!("unknown --method {other:?}"))),
    };
    let mut out = format!("{method} subset of {k}:\n");
    for name in &result.selected {
        let _ = writeln!(out, "  {name}");
    }
    let _ = write!(
        out,
        "coverage: max {:.1}%, mean {:.1}%",
        100.0 * result.max_distance,
        100.0 * result.mean_distance
    );
    Ok(out)
}

/// `similar`: print the most and least similar benchmark pairs.
///
/// # Errors
///
/// Fails on bad flags or file errors.
pub fn cmd_similar(flags: &Flags) -> Result<String> {
    let tree = read_model(flags.required("model")?)?;
    let data = read_dataset(flags.required("data")?)?;
    let k: usize = flags.parsed_or("pairs", 5)?;
    let matrix = SimilarityMatrix::from_table(&ProfileTable::build(&tree, &data));
    let mut out = String::from("most similar pairs:\n");
    for (a, b, d) in matrix.most_similar_pairs(k) {
        let _ = writeln!(out, "  {a:<18} {b:<18} {:.1}%", 100.0 * d);
    }
    out.push_str("most dissimilar pairs:\n");
    for (a, b, d) in matrix.most_dissimilar_pairs(k) {
        let _ = writeln!(out, "  {a:<18} {b:<18} {:.1}%", 100.0 * d);
    }
    Ok(out.trim_end().to_owned())
}

/// `explain`: explain the prediction for one sample (by row index) of a
/// dataset.
///
/// # Errors
///
/// Fails on bad flags, file errors, or an out-of-range row index.
pub fn cmd_explain(flags: &Flags) -> Result<String> {
    let tree = read_model(flags.required("model")?)?;
    let data = read_dataset(flags.required("data")?)?;
    let row: usize = flags.parsed_or("row", 0)?;
    if row >= data.len() {
        return Err(CliError(format!(
            "--row {row} out of range (dataset has {} samples)",
            data.len()
        )));
    }
    let sample = data.sample(row);
    let mut out = format!(
        "sample {row} (benchmark {}, actual CPI {:.4}):\n",
        data.benchmark_name(data.label(row)).unwrap_or("?"),
        sample.cpi()
    );
    let explanation = tree.explain(sample);
    out.push_str(&explanation.to_string());
    // The compiled engine's effective equation for this leaf: the whole
    // smoothing chain collapsed into one linear model.
    if let Some(folded) = tree.compile().folded_model(explanation.lm_index) {
        let _ = write!(
            out,
            "\n=> folded LM{} (smoothing collapsed): {folded}",
            explanation.lm_index
        );
    }
    Ok(out)
}

/// `stats`: per-event summary statistics of a dataset.
///
/// # Errors
///
/// Fails on bad flags, file errors, or an empty dataset.
pub fn cmd_stats(flags: &Flags) -> Result<String> {
    let data = read_dataset(flags.required("data")?)?;
    let cpi = data.cpi_summary().map_err(|e| CliError(e.to_string()))?;
    let mut out = format!(
        "{} samples, {} benchmarks\n{:<12} {:>12} {:>12} {:>12} {:>12}\n",
        data.len(),
        data.benchmark_count(),
        "metric",
        "mean",
        "sd",
        "min",
        "max"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>12.5} {:>12.5} {:>12.5} {:>12.5}",
        "CPI",
        cpi.mean(),
        cpi.std_dev(),
        cpi.min(),
        cpi.max()
    );
    for e in perfcounters::EventId::ALL {
        let s = data.summary(e).map_err(|err| CliError(err.to_string()))?;
        let _ = writeln!(
            out,
            "{:<12} {:>12.5e} {:>12.5e} {:>12.5e} {:>12.5e}",
            e.short_name(),
            s.mean(),
            s.std_dev(),
            s.min(),
            s.max()
        );
    }
    Ok(out.trim_end().to_owned())
}

/// `crossval`: k-fold cross-validation of the default configuration.
///
/// # Errors
///
/// Fails on bad flags, file errors, or invalid fold counts.
pub fn cmd_crossval(flags: &Flags) -> Result<String> {
    let data = read_dataset(flags.required("data")?)?;
    let folds: usize = flags.parsed_or("folds", 5)?;
    let min_leaf: usize = flags.parsed_or("min-leaf", (data.len() / 200).max(4))?;
    let seed: u64 = flags.parsed_or("seed", 1)?;
    let config = M5Config::default()
        .with_min_leaf(min_leaf)
        .with_n_threads(parse_threads(flags)?);
    let cv = k_fold(&data, &config, folds, seed).map_err(|e| CliError(e.to_string()))?;
    Ok(format!(
        "{folds}-fold CV: MAE {:.4}, RMSE {:.4}, C {:.4}, mean leaves {:.1}",
        cv.mean_mae(),
        cv.mean_rmse(),
        cv.mean_correlation(),
        cv.mean_leaves()
    ))
}

/// Where `serve` gets its initial model from.
enum ServeModel<'a> {
    /// A fitted tree serialized to a JSON file.
    File(&'a str),
    /// The canonical headline tree of a registered suite, resolved
    /// through the pipeline (cached after the first fit).
    Suite(SuiteKind),
}

/// `serve`: host a fitted model behind the HTTP prediction service.
///
/// Loads `--model FILE` into the hot-swappable registry (named by its
/// file stem unless `--name` overrides) — or, with `--suite NAME`,
/// resolves the suite's canonical headline tree through the pipeline
/// (warm runs replay the cached tree) — binds `--addr`, and blocks
/// until a client POSTs `/shutdown`. The environment-selected artifact
/// store is attached so `POST /swap {"model":NAME,"key":HEX}` can
/// promote any cached tree by fingerprint with zero downtime. Metrics
/// stay enabled for the server's lifetime; the returned report is the
/// final `serve.*` counter snapshot.
///
/// `--window-us 0` disables batching (every request runs alone), which
/// is the honest baseline the serve benchmark compares against.
///
/// # Errors
///
/// Fails on an unreadable model file, invalid flags, or when the
/// address cannot be bound.
pub fn cmd_serve(flags: &Flags) -> Result<String> {
    let source = match (flags.optional("model"), flags.optional("suite")) {
        (Some(path), None) => ServeModel::File(path),
        (None, Some(suite)) => ServeModel::Suite(suite_by_name(suite)?),
        (Some(_), Some(_)) => {
            return Err(CliError(
                "--model and --suite are mutually exclusive".into(),
            ))
        }
        (None, None) => return Err(CliError("serve needs --model FILE or --suite NAME".into())),
    };
    let window_us: u64 = flags.parsed_or("window-us", 200)?;
    let max_batch_rows: usize = flags.parsed_or("batch-rows", 4096)?;
    let queue_rows: usize = flags.parsed_or("queue-rows", 16_384)?;
    let max_connections: usize = flags.parsed_or("max-conns", 64)?;
    if max_batch_rows == 0 || queue_rows == 0 || max_connections == 0 {
        return Err(CliError(
            "--batch-rows, --queue-rows, and --max-conns must be at least 1".into(),
        ));
    }
    let addr = flags.optional("addr").unwrap_or("127.0.0.1:8080");
    let (tree, default_name) = match &source {
        ServeModel::File(path) => (
            read_model(path)?,
            Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("model")
                .to_owned(),
        ),
        ServeModel::Suite(kind) => {
            let ctx = PipelineContext::from_env();
            let spec = pipeline::TreeSpec::suite_tree(DatasetSpec::canonical(*kind));
            let tree = ctx
                .tree(&spec)
                .map_err(|e| CliError(format!("cannot fit {} suite tree: {e}", kind.tag())))?;
            ((*tree).clone(), kind.tag().to_owned())
        }
    };
    let name = match flags.optional("name") {
        Some(name) => name.to_owned(),
        None => default_name,
    };
    let p99_ms: u64 = flags.parsed_or("p99-ms", 250)?;
    let trace_sample: Option<u64> = match flags.optional("trace-sample") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError(format!("--trace-sample {raw:?} is not a number")))?,
        ),
        None => None,
    };
    // Metrics always; request tracing only when sampling is asked for
    // (via the flag or SPECREPRO_TRACE_OUT); the flight recorder is
    // always armed — it is the post-incident story of load sheds and
    // failed swaps, and its disabled-path cost is one relaxed load per
    // record site.
    obskit::set_enabled(true, trace_sample.is_some() || obskit::tracing_enabled());
    obskit::set_ring_enabled(true);
    if let Some(every) = trace_sample {
        serve::set_trace_sample(every);
    }
    let registry = std::sync::Arc::new(serve::ModelRegistry::new());
    let version = registry.register_tree(&name, &tree);
    let server = serve::Server::start(
        registry,
        serve::ServerConfig {
            addr: addr.to_owned(),
            coalescer: serve::CoalescerConfig {
                window: std::time::Duration::from_micros(window_us),
                max_batch_rows,
                queue_rows,
            },
            max_connections,
            store: Some(ArtifactStore::from_env()),
            default_model: Some(name.clone()),
            monitors: obskit::monitor::MonitorSet::standard_serve(p99_ms),
        },
    )
    .map_err(|e| CliError(format!("cannot bind {addr}: {e}")))?;
    eprintln!(
        "serving {name} (version {}) on http://{} — POST /predict|/classify|/swap|/debug/flight|/shutdown, GET /healthz|/metrics",
        version.version,
        server.addr()
    );
    server.join();
    let snap = obskit::metrics::snapshot();
    let metric = |n: &str| snap.get(n).unwrap_or(0);
    Ok(format!(
        "served {} requests ({} batches; {} rows predicted, {} classified); \
         {} shed busy, {} bad requests, {} model swaps",
        metric("serve.requests"),
        metric("serve.batches"),
        metric("serve.rows_predicted"),
        metric("serve.rows_classified"),
        metric("serve.rejected_busy"),
        metric("serve.bad_requests"),
        metric("serve.model_swaps"),
    ))
}

/// `stream`: ingest a simulated fleet into a chunked `SPDC` container,
/// then refit the model over sliding windows of the sealed rows.
///
/// The container layout is a pure function of the fleet and chunking
/// configuration — `--threads` only changes wall clock, never bytes —
/// and `--fault-seed` arms the deterministic fault injector (drops,
/// duplicates, reorders, host deaths, torn chunk writes) whose
/// recovery machinery keeps the sealed bytes identical to a clean run
/// modulo host deaths. Windowed refits warm-start from the artifact
/// store by window-content fingerprint, so a re-run over unchanged
/// data replays cached trees.
///
/// # Errors
///
/// Fails on bad flags, I/O errors, or degenerate training windows.
pub fn cmd_stream(flags: &Flags) -> Result<String> {
    let kind = suite_by_name(flags.optional("suite").unwrap_or("cpu2006"))?;
    let hosts: u64 = flags.parsed_or("hosts", 1000)?;
    let intervals: u32 = flags.parsed_or("intervals", 40)?;
    let seed: u64 = flags.parsed_or("seed", 1)?;
    let out = flags.required("out")?;
    let mut fleet = stream::FleetConfig::cpu2006(hosts, intervals, seed);
    fleet.suite = kind;
    let mut cfg = stream::StreamConfig::new(fleet)
        .with_shards(flags.parsed_or("shards", 4)?)
        .with_threads(parse_threads(flags)?)
        .with_chunk_rows(flags.parsed_or("chunk-rows", 1024)?);
    if let Some(raw) = flags.optional("fault-seed") {
        let fault_seed: u64 = raw
            .parse()
            .map_err(|_| CliError(format!("cannot parse --fault-seed value {raw:?}")))?;
        cfg = cfg.with_faults(stream::FaultConfig::standard(fault_seed));
    }
    let summary = stream::run_stream(&cfg, Path::new(out))
        .map_err(|e| CliError(format!("stream to {out}: {e}")))?;
    let mut report = format!(
        "sealed {} rows in {} chunks to {out}\n  duplicates dropped {}, retransmits {}, faults injected {}, torn writes repaired {}",
        summary.rows,
        summary.chunks,
        summary.duplicates_dropped,
        summary.retransmits,
        summary.faults_injected,
        summary.torn_writes_repaired,
    );
    let window_rows: u64 = flags.parsed_or("window-rows", 8192)?;
    if window_rows == 0 || summary.rows == 0 {
        return Ok(report);
    }
    let min_leaf: usize = flags.parsed_or("min-leaf", 300)?;
    let mut refit_cfg =
        stream::RefitConfig::new(window_rows, M5Config::default().with_min_leaf(min_leaf));
    if let Some(raw) = flags.optional("stride") {
        let stride: u64 = raw
            .parse()
            .map_err(|_| CliError(format!("cannot parse --stride value {raw:?}")))?;
        refit_cfg = refit_cfg.with_stride(stride);
    }
    let file =
        std::fs::File::open(out).map_err(|e| CliError(format!("cannot reopen {out}: {e}")))?;
    let mut reader = pipeline::ChunkedReader::open(BufReader::new(file))
        .map_err(|e| CliError(format!("{out}: {e}")))?;
    let store = ArtifactStore::from_env();
    let fits = stream::windowed_refit(&mut reader, &store, &refit_cfg)
        .map_err(|e| CliError(format!("refit over {out}: {e}")))?;
    let _ = write!(
        report,
        "\nrefit {} windows of {window_rows} rows:",
        fits.len()
    );
    for fit in &fits {
        let _ = write!(
            report,
            "\n  rows {:>8}..{:<8} {} {:>8.2} ms  ({} leaves)",
            fit.window.start,
            fit.window.end,
            if fit.cached { "cached" } else { "fitted" },
            fit.refit_ns as f64 / 1e6,
            fit.tree.n_leaves(),
        );
    }
    Ok(report)
}

/// `cache`: inspect or clear the environment-selected artifact store.
///
/// Unlike every other subcommand this takes one positional action
/// (`stats [--json]` or `clear`), not `--flag value` pairs, so [`run`]
/// dispatches it before flag parsing.
///
/// # Errors
///
/// Fails on a missing, unknown, or over-specified action, or on
/// filesystem errors while clearing.
pub fn cmd_cache(args: &[String]) -> Result<String> {
    let store = ArtifactStore::from_env();
    match args {
        [action] if action == "stats" => Ok(cache_stats(&store, false)),
        [action, flag] if action == "stats" && flag == "--json" => Ok(cache_stats(&store, true)),
        [action] if action == "clear" => cache_clear(&store),
        [other] => Err(CliError(format!(
            "unknown cache action {other:?} (expected stats or clear)"
        ))),
        _ => Err(CliError(
            "usage: specrepro cache stats|clear (stats accepts --json)".into(),
        )),
    }
}

/// On-disk store counts plus this process's pipeline telemetry (hit
/// ratio, bytes moved, corrupt evictions) and engine row accounting
/// (vector-lane vs scalar-tail rows) — the telemetry is all zeros
/// unless metrics were enabled and the work ran in-process, e.g.
/// under `specrepro metrics`.
fn cache_stats(store: &ArtifactStore, json: bool) -> String {
    let stats = store.stats();
    let snap = obskit::metrics::snapshot();
    let metric = |name: &str| snap.get(name).unwrap_or(0);
    let hits = metric("pipeline.dataset_hits") + metric("pipeline.tree_hits");
    let misses = metric("pipeline.dataset_misses") + metric("pipeline.tree_misses");
    let lookups = hits + misses;
    let hit_ratio = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    let bytes_read = metric("pipeline.bytes_read");
    let bytes_written = metric("pipeline.bytes_written");
    let evictions = metric("pipeline.corrupt_evictions");
    let simd_rows = metric("engine.simd_rows");
    let tail_rows = metric("engine.scalar_tail_rows");
    let serve_requests = metric("serve.requests");
    let serve_batches = metric("serve.batches");
    let serve_rows = metric("serve.rows_predicted") + metric("serve.rows_classified");
    let serve_shed = metric("serve.rejected_busy");
    if json {
        return format!(
            concat!(
                "{{\"root\":{},",
                "\"datasets\":{{\"files\":{},\"bytes\":{}}},",
                "\"trees\":{{\"files\":{},\"bytes\":{}}},",
                "\"total\":{{\"files\":{},\"bytes\":{}}},",
                "\"pipeline\":{{\"hits\":{},\"misses\":{},\"hit_ratio\":{:.4},",
                "\"bytes_read\":{},\"bytes_written\":{},\"corrupt_evictions\":{}}},",
                "\"engine\":{{\"simd_rows\":{},\"scalar_tail_rows\":{}}},",
                "\"serve\":{{\"requests\":{},\"batches\":{},\"rows\":{},\"rejected_busy\":{}}}}}"
            ),
            obskit::export::json_string(&store.root().display().to_string()),
            stats.datasets,
            stats.dataset_bytes,
            stats.trees,
            stats.tree_bytes,
            stats.files(),
            stats.bytes(),
            hits,
            misses,
            hit_ratio,
            bytes_read,
            bytes_written,
            evictions,
            simd_rows,
            tail_rows,
            serve_requests,
            serve_batches,
            serve_rows,
            serve_shed,
        );
    }
    format!(
        "artifact store {}\n  datasets  {:>5}  {:>10}\n  trees     {:>5}  {:>10}\n  total     {:>5}  {:>10}\n\
         pipeline telemetry (this process)\n  lookups   {:>5}  hit ratio {:.1}%\n  read      {:>10}  written {:>10}\n  corrupt evictions {}\n\
         engine rows (this process)\n  simd      {:>10}  scalar tail {:>10}\n\
         serve (this process)\n  requests  {:>10}  batches {:>10}\n  rows      {:>10}  shed busy {:>8}",
        store.root().display(),
        stats.datasets,
        human_bytes(stats.dataset_bytes),
        stats.trees,
        human_bytes(stats.tree_bytes),
        stats.files(),
        human_bytes(stats.bytes()),
        lookups,
        100.0 * hit_ratio,
        human_bytes(bytes_read),
        human_bytes(bytes_written),
        evictions,
        simd_rows,
        tail_rows,
        serve_requests,
        serve_batches,
        serve_rows,
        serve_shed,
    )
}

fn cache_clear(store: &ArtifactStore) -> Result<String> {
    let stats = store.stats();
    store.clear()?;
    Ok(format!(
        "cleared {} artifacts ({}) from {}",
        stats.files(),
        human_bytes(stats.bytes()),
        store.root().display()
    ))
}

/// `trace`: run a wrapped subcommand with tracing and metrics enabled,
/// then write a Chrome-trace (`chrome://tracing`, Perfetto) JSON file.
///
/// Takes positional arguments — `--out FILE` followed by a full
/// `specrepro` command line — so [`run`] dispatches it before flag
/// parsing. Telemetry counters are reset first, so the trace covers
/// exactly the wrapped command. The trace is written even when the
/// wrapped command fails, which makes failed runs inspectable.
///
/// # Errors
///
/// Fails on a malformed invocation, on the wrapped command's own
/// error, or when the trace file cannot be written.
pub fn cmd_trace(args: &[String]) -> Result<String> {
    const TRACE_USAGE: &str = "usage: specrepro trace --out FILE <command ...>";
    let (out, rest) = match args.split_first() {
        Some((flag, rest)) if flag == "--out" => rest
            .split_first()
            .ok_or_else(|| CliError(format!("--out is missing a value\n{TRACE_USAGE}")))?,
        _ => return Err(CliError(TRACE_USAGE.into())),
    };
    if rest.is_empty() {
        return Err(CliError(format!("no command to trace\n{TRACE_USAGE}")));
    }
    obskit::metrics::reset();
    obskit::span::reset();
    obskit::set_enabled(true, true);
    let result = run(rest);
    obskit::set_enabled(false, false);
    let events = obskit::span::event_count();
    obskit::export::write_trace(out).map_err(|e| CliError(format!("cannot write {out}: {e}")))?;
    let report = result?;
    Ok(format!(
        "{report}\n\nwrote {events} trace events to {out} (open in chrome://tracing or ui.perfetto.dev)"
    ))
}

/// `metrics`: run a wrapped subcommand with metrics enabled, then
/// report the counter/gauge/histogram registry — human-readable by
/// default, a single JSON document with `--json`, or the
/// Prometheus/OpenMetrics text exposition with `--prom` (the wrapped
/// command's own report is suppressed so stdout stays parseable and
/// can be dropped straight into a Prometheus textfile collector).
///
/// Positional like [`cmd_trace`], dispatched before flag parsing.
///
/// # Errors
///
/// Fails on a malformed invocation or on the wrapped command's error.
pub fn cmd_metrics(args: &[String]) -> Result<String> {
    const METRICS_USAGE: &str = "usage: specrepro metrics [--json | --prom] <command ...>";
    enum Format {
        Human,
        Json,
        Prom,
    }
    let (format, rest) = match args.split_first() {
        Some((flag, rest)) if flag == "--json" => (Format::Json, rest),
        Some((flag, rest)) if flag == "--prom" => (Format::Prom, rest),
        _ => (Format::Human, args),
    };
    if rest.is_empty() {
        return Err(CliError(format!("no command to measure\n{METRICS_USAGE}")));
    }
    obskit::metrics::reset();
    obskit::set_enabled(true, false);
    let result = run(rest);
    obskit::set_enabled(false, false);
    let report = result?;
    Ok(match format {
        Format::Json => obskit::export::metrics_json(),
        Format::Prom => obskit::prom::prom_text(),
        Format::Human => format!(
            "{report}\n\nmetrics:\n{}",
            obskit::export::metrics_human().trim_end()
        ),
    })
}

/// `flight`: run a wrapped subcommand with the flight recorder (and
/// metrics) enabled, then write the ring's JSON dump — the most recent
/// operational events (request submissions, batch flushes, load sheds,
/// swaps, monitor fires) in record order.
///
/// Positional like [`cmd_trace`], dispatched before flag parsing. The
/// dump is written even when the wrapped command fails — that is the
/// whole point of a flight recorder.
///
/// # Errors
///
/// Fails on a malformed invocation, on the wrapped command's own
/// error, or when the dump file cannot be written.
pub fn cmd_flight(args: &[String]) -> Result<String> {
    const FLIGHT_USAGE: &str = "usage: specrepro flight --out FILE <command ...>";
    let (out, rest) = match args.split_first() {
        Some((flag, rest)) if flag == "--out" => rest
            .split_first()
            .ok_or_else(|| CliError(format!("--out is missing a value\n{FLIGHT_USAGE}")))?,
        _ => return Err(CliError(FLIGHT_USAGE.into())),
    };
    if rest.is_empty() {
        return Err(CliError(format!("no command to record\n{FLIGHT_USAGE}")));
    }
    obskit::metrics::reset();
    obskit::ring::reset();
    obskit::set_enabled(true, false);
    obskit::set_ring_enabled(true);
    let result = run(rest);
    obskit::set_ring_enabled(false);
    obskit::set_enabled(false, false);
    let (events, dropped) = obskit::ring::snapshot_events();
    let n_events = events.len();
    obskit::ring::write_dump(std::path::Path::new(out))
        .map_err(|e| CliError(format!("cannot write {out}: {e}")))?;
    let report = result?;
    Ok(format!(
        "{report}\n\nwrote {n_events} flight events ({dropped} dropped) to {out}"
    ))
}

fn human_bytes(n: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = n as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{n} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Usage text.
pub const USAGE: &str = "\
specrepro — SPEC suite characterization toolkit (cpu2006, omp2001,
cpu2017, cpu2026; `specrepro suite list` enumerates the registry)

USAGE:
  specrepro suite    list
  specrepro generate --suite NAME --out FILE [--samples N] [--seed S]
                     [--threads T]
  specrepro fit      --data FILE [--out MODEL.json] [--min-leaf N] [--sd-fraction F]
                     [--print summary|tree|models|importance|dot] [--threads T]
  specrepro predict  --model MODEL.json --data FILE [--out PRED.csv]
                     [--engine compiled|interpreted] [--threads T]
  specrepro classify --model MODEL.json --data FILE
  specrepro transfer --model MODEL.json --train FILE --test FILE
  specrepro subset   --model MODEL.json --data FILE [--k N] [--method greedy|kmeans]
  specrepro similar  --model MODEL.json --data FILE [--pairs N]
  specrepro explain  --model MODEL.json --data FILE [--row N]
  specrepro stats    --data FILE
  specrepro crossval --data FILE [--folds K] [--min-leaf N] [--seed S] [--threads T]
  specrepro serve    --model MODEL.json | --suite NAME [--name NAME]
                     [--addr HOST:PORT] [--window-us U] [--batch-rows N]
                     [--queue-rows N] [--max-conns N] [--p99-ms MS]
                     [--trace-sample N]
  specrepro stream   --out FILE.spdc [--suite NAME] [--hosts N]
                     [--intervals N] [--seed S] [--shards N] [--threads T]
                     [--chunk-rows N] [--fault-seed S] [--window-rows N]
                     [--stride N] [--min-leaf N]
  specrepro cache    stats [--json] | clear
  specrepro trace    --out FILE <command ...>
  specrepro metrics  [--json | --prom] <command ...>
  specrepro flight   --out FILE <command ...>

--suite NAME resolves through the generation-parameterized suite
registry; `specrepro suite list` prints every registered suite with its
generation, environment, and benchmark count.

Dataset files: .csv, .arff (WEKA), or .json by extension.
--threads parallelizes fitting and generation. Fitted trees are
bit-identical for any thread count. Generation with --threads >= 2 uses
per-benchmark streams and is thread-count-invariant, but differs from
the byte-stable sequential --threads 1 output.

generate and fit resolve through a content-addressed artifact store
(SPECREPRO_CACHE_DIR when set, else <system temp>/specrepro-cache):
repeating a command with identical inputs replays the cached artifact
bit-for-bit instead of recomputing. `specrepro cache stats` reports its
contents, `specrepro cache clear` deletes it, and setting
SPECREPRO_OBS_LOG=0 (or its legacy alias SPECREPRO_PIPELINE_LOG=0)
silences the per-stage cache log on stderr.

serve hosts the model as an HTTP prediction service (POST /predict,
/classify; GET /healthz, /metrics; POST /swap promotes a cached tree by
fingerprint with zero downtime; POST /debug/flight dumps the flight
recorder; POST /shutdown drains and exits). /metrics serves JSON by
default and the Prometheus/OpenMetrics text exposition with
?format=prom (or Accept: application/openmetrics-text). /healthz
reports name@version model fingerprints and evaluates the SLO monitors
(p99 latency under --p99-ms, 429 rate). Requests are coalesced into
columnar batches — flushed after --window-us microseconds or at
--batch-rows rows, whichever comes first; --window-us 0 disables
batching. --queue-rows bounds the work queue (overload answers 429 +
Retry-After and the flight recorder auto-dumps on shed bursts).
--trace-sample N (or SPECREPRO_TRACE_SAMPLE with tracing enabled)
traces one request in N end to end: the X-Request-Id echoed on the
response links the request's parse, queue-wait, batch, engine, and
respond spans in the Chrome-trace export.

stream simulates a fleet of --hosts PMU-sampling hosts feeding a
sharded aggregator and seals the rows into a chunked .spdc container
(out-of-core readable), then refits the model over sliding windows of
--window-rows rows (advance --stride, default half a window;
--window-rows 0 skips refitting). Refits warm-start from the artifact
store by window-content fingerprint. Container bytes depend only on
the fleet, shard, and chunk configuration — never on --threads.
--fault-seed S arms the deterministic fault injector (drops,
duplicates, reorders, host deaths, torn chunk writes); recovery keeps
sealed bytes identical to a clean run of the surviving rows.

trace, metrics, and flight wrap any other command with telemetry
enabled: trace writes a Chrome-trace JSON (chrome://tracing,
ui.perfetto.dev) of the trainer/engine/pipeline spans, metrics dumps
the counter registry (--prom renders the OpenMetrics exposition), and
flight writes the flight-recorder ring — the most recent operational
events — even when the wrapped command fails. Every command also honors
SPECREPRO_TRACE_OUT=FILE, SPECREPRO_METRICS_OUT=FILE, and
SPECREPRO_FLIGHT_OUT=FILE to capture the same telemetry to files.";

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a printable error for unknown commands or any command
/// failure.
pub fn run(args: &[String]) -> Result<String> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| CliError(format!("no command given\n\n{USAGE}")))?;
    // `suite`, `cache`, `trace`, `metrics`, and `flight` take
    // positional arguments, which `Flags::parse` rejects, so they
    // dispatch before flag parsing.
    if command == "suite" {
        return cmd_suite(rest);
    }
    if command == "cache" {
        return cmd_cache(rest);
    }
    if command == "trace" {
        return cmd_trace(rest);
    }
    if command == "metrics" {
        return cmd_metrics(rest);
    }
    if command == "flight" {
        return cmd_flight(rest);
    }
    let flags = Flags::parse(rest)?;
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "fit" => cmd_fit(&flags),
        "predict" => cmd_predict(&flags),
        "classify" => cmd_classify(&flags),
        "transfer" => cmd_transfer(&flags),
        "subset" => cmd_subset(&flags),
        "similar" => cmd_similar(&flags),
        "explain" => cmd_explain(&flags),
        "stats" => cmd_stats(&flags),
        "crossval" => cmd_crossval(&flags),
        "serve" => cmd_serve(&flags),
        "stream" => cmd_stream(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs() {
        let f = Flags::parse(&argv(&["--suite", "cpu2006", "--samples", "100"])).unwrap();
        assert_eq!(f.required("suite").unwrap(), "cpu2006");
        assert_eq!(f.parsed_or::<usize>("samples", 0).unwrap(), 100);
        assert_eq!(f.parsed_or::<usize>("missing", 7).unwrap(), 7);
        assert!(f.required("missing").is_err());
    }

    #[test]
    fn flags_reject_malformed() {
        assert!(Flags::parse(&argv(&["positional"])).is_err());
        assert!(Flags::parse(&argv(&["--dangling"])).is_err());
        let f = Flags::parse(&argv(&["--samples", "notanumber"])).unwrap();
        assert!(f.parsed_or::<usize>("samples", 0).is_err());
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&argv(&["help"])).unwrap().contains("USAGE"));
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.0.contains("unknown command"));
        assert!(run(&[]).is_err());
    }

    #[test]
    fn unknown_suite_rejected() {
        let f = Flags::parse(&argv(&["--suite", "spec95", "--out", "/tmp/x.csv"])).unwrap();
        let err = cmd_generate(&f).unwrap_err();
        // The error enumerates the live registry, not a hardcoded pair.
        for kind in SuiteKind::all() {
            assert!(err.0.contains(kind.tag()), "{err}");
        }
    }

    #[test]
    fn suite_list_enumerates_the_registry() {
        let out = run(&argv(&["suite", "list"])).unwrap();
        for kind in SuiteKind::all() {
            assert!(out.contains(kind.tag()), "missing {}: {out}", kind.tag());
            assert!(out.contains(&kind.generation().to_string()), "{out}");
        }
        assert!(out.contains("single-threaded") && out.contains("multi-threaded"));
        let err = run(&argv(&["suite", "frobnicate"])).unwrap_err();
        assert!(err.0.contains("unknown suite action"), "{err}");
        assert!(run(&argv(&["suite"])).is_err());
    }

    #[test]
    fn serve_rejects_conflicting_model_sources() {
        let f = Flags::parse(&argv(&[
            "--model",
            "/nonexistent/model.json",
            "--suite",
            "cpu2006",
        ]))
        .unwrap();
        let err = cmd_serve(&f).unwrap_err();
        assert!(err.0.contains("mutually exclusive"), "{err}");
        let f = Flags::parse(&argv(&["--suite", "spec95"])).unwrap();
        assert!(cmd_serve(&f).is_err());
    }

    #[test]
    fn zero_threads_rejected() {
        let f = Flags::parse(&argv(&["--threads", "0"])).unwrap();
        assert!(parse_threads(&f).is_err());
        let f = Flags::parse(&argv(&["--threads", "4"])).unwrap();
        assert_eq!(parse_threads(&f).unwrap(), 4);
        assert_eq!(parse_threads(&Flags::default()).unwrap(), 1);
    }

    #[test]
    fn extension_detection() {
        assert!(read_dataset("/nonexistent/file.csv").is_err());
        assert!(read_dataset("/nonexistent/file.xyz").is_err());
        assert!(extension("noext").is_err());
    }

    #[test]
    fn cache_requires_a_known_action() {
        let err = run(&argv(&["cache"])).unwrap_err();
        assert!(err.0.contains("cache stats|clear"));
        let err = run(&argv(&["cache", "frobnicate"])).unwrap_err();
        assert!(err.0.contains("unknown cache action"));
        let err = run(&argv(&["cache", "stats", "extra"])).unwrap_err();
        assert!(err.0.contains("cache stats|clear"));
    }

    #[test]
    fn cache_stats_and_clear_render_over_an_explicit_store() {
        let dir = std::env::temp_dir().join(format!("specrepro-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir);
        let stats = cache_stats(&store, false);
        assert!(stats.contains("datasets"));
        assert!(stats.contains("0 B"));
        assert!(stats.contains("pipeline telemetry"));
        assert!(stats.contains("engine rows"));
        assert!(stats.contains("serve (this process)"));
        let as_json = cache_stats(&store, true);
        let parsed: serde_json::Value = serde_json::from_str(&as_json).unwrap();
        assert!(parsed.get("pipeline").is_some(), "{as_json}");
        let engine = parsed.get("engine").expect("engine section");
        assert!(engine.get("simd_rows").is_some(), "{as_json}");
        assert!(engine.get("scalar_tail_rows").is_some(), "{as_json}");
        let serve_section = parsed.get("serve").expect("serve section");
        for key in ["requests", "batches", "rows", "rejected_busy"] {
            assert!(serve_section.get(key).is_some(), "{as_json}");
        }
        let cleared = cache_clear(&store).unwrap();
        assert!(cleared.contains("cleared 0 artifacts"));
    }

    #[test]
    fn serve_requires_a_model_and_sane_bounds() {
        let err = run(&argv(&["serve"])).unwrap_err();
        assert!(err.0.contains("--model"), "{err}");
        let err = run(&argv(&[
            "serve",
            "--model",
            "/nonexistent/model.json",
            "--batch-rows",
            "0",
        ]))
        .unwrap_err();
        assert!(err.0.contains("at least 1"), "{err}");
    }

    #[test]
    fn human_bytes_picks_sensible_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0 MiB");
    }

    /// Serializes the tests that flip the global telemetry switch so
    /// they do not reset each other's counters mid-flight.
    static TELEMETRY: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A generation seed no earlier run has used, so the wrapped `fit`
    /// below is a genuine cache miss: warm artifact-store hits skip
    /// training entirely, which would leave the trainer counters and
    /// spans these tests assert on at zero.
    fn unique_seed() -> String {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos()
            .to_string()
    }

    #[test]
    fn trace_and_metrics_reject_malformed_invocations() {
        assert!(run(&argv(&["trace"])).unwrap_err().0.contains("usage"));
        assert!(run(&argv(&["trace", "--out"]))
            .unwrap_err()
            .0
            .contains("--out"));
        let err = run(&argv(&["trace", "--out", "/tmp/t.json"])).unwrap_err();
        assert!(err.0.contains("no command to trace"));
        let err = run(&argv(&["metrics"])).unwrap_err();
        assert!(err.0.contains("no command to measure"));
        assert!(run(&argv(&["metrics", "--json"]))
            .unwrap_err()
            .0
            .contains("no command"));
        assert!(run(&argv(&["metrics", "--prom"]))
            .unwrap_err()
            .0
            .contains("no command"));
        assert!(run(&argv(&["flight"])).unwrap_err().0.contains("usage"));
        let err = run(&argv(&["flight", "--out", "/tmp/f.json"])).unwrap_err();
        assert!(err.0.contains("no command to record"));
    }

    #[test]
    fn metrics_wraps_a_fit_and_reports_trainer_counters() {
        let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!("specrepro-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("obs.csv");
        run(&argv(&[
            "generate",
            "--suite",
            "cpu2006",
            "--samples",
            "400",
            "--seed",
            &unique_seed(),
            "--out",
            csv.to_str().unwrap(),
        ]))
        .unwrap();
        let human = run(&argv(&[
            "metrics",
            "fit",
            "--data",
            csv.to_str().unwrap(),
            "--min-leaf",
            "40",
        ]))
        .unwrap();
        assert!(human.contains("training MAE"), "{human}");
        assert!(human.contains("trainer.fits"), "{human}");
        assert!(human.contains("pipeline."), "{human}");
        let json = run(&argv(&[
            "metrics",
            "--json",
            "fit",
            "--data",
            csv.to_str().unwrap(),
            "--min-leaf",
            "40",
        ]))
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed.get("counters").is_some(), "{json}");
        assert!(
            parsed
                .get("obs")
                .and_then(|o| o.get("schema_version"))
                .is_some(),
            "{json}"
        );
        let prom = run(&argv(&[
            "metrics",
            "--prom",
            "fit",
            "--data",
            csv.to_str().unwrap(),
            "--min-leaf",
            "40",
        ]))
        .unwrap();
        assert!(prom.contains("# TYPE trainer_fits counter"), "{prom}");
        assert!(prom.contains("trainer_fits_total "), "{prom}");
        assert!(prom.trim_end().ends_with("# EOF"), "{prom}");
        assert!(!obskit::metrics_enabled(), "metrics left enabled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_writes_a_ring_dump_of_the_wrapped_command() {
        let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!("specrepro-cli-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("flight.csv");
        run(&argv(&[
            "generate",
            "--suite",
            "cpu2006",
            "--samples",
            "400",
            "--seed",
            &unique_seed(),
            "--out",
            csv.to_str().unwrap(),
        ]))
        .unwrap();
        let out = dir.join("flight.json");
        let report = run(&argv(&[
            "flight",
            "--out",
            out.to_str().unwrap(),
            "fit",
            "--data",
            csv.to_str().unwrap(),
            "--min-leaf",
            "40",
        ]))
        .unwrap();
        assert!(report.contains("flight events"), "{report}");
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let schema = doc
            .get("obs")
            .and_then(|o| o.get("schema_version"))
            .and_then(serde_json::Value::as_u64);
        assert_eq!(schema, Some(1), "{doc:?}");
        assert!(
            matches!(doc.get("events"), Some(serde_json::Value::Array(_))),
            "{doc:?}"
        );
        assert!(!obskit::ring_enabled(), "ring left enabled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_writes_a_chrome_trace_of_the_wrapped_command() {
        let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!("specrepro-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("trace.csv");
        run(&argv(&[
            "generate",
            "--suite",
            "cpu2006",
            "--samples",
            "400",
            "--seed",
            &unique_seed(),
            "--out",
            csv.to_str().unwrap(),
        ]))
        .unwrap();
        let out = dir.join("trace.json");
        let report = run(&argv(&[
            "trace",
            "--out",
            out.to_str().unwrap(),
            "fit",
            "--data",
            csv.to_str().unwrap(),
            "--min-leaf",
            "40",
        ]))
        .unwrap();
        assert!(report.contains("trace events"), "{report}");
        let text = std::fs::read_to_string(&out).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(parsed.get("traceEvents").is_some());
        assert!(text.contains("m5.fit"), "trace lacks the fit span");
        assert!(!obskit::tracing_enabled(), "tracing left enabled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_seals_a_container_and_refits_windows() {
        let dir = std::env::temp_dir().join(format!("specrepro-cli-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spdc = dir.join("fleet.spdc");
        let report = run(&argv(&[
            "stream",
            "--hosts",
            "40",
            "--intervals",
            "20",
            "--chunk-rows",
            "128",
            "--window-rows",
            "400",
            "--min-leaf",
            "30",
            "--fault-seed",
            "7",
            "--out",
            spdc.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(report.contains("sealed"), "{report}");
        assert!(report.contains("refit"), "{report}");
        assert!(spdc.exists());
        // --window-rows 0 skips refitting entirely.
        let no_refit = run(&argv(&[
            "stream",
            "--hosts",
            "10",
            "--intervals",
            "4",
            "--window-rows",
            "0",
            "--out",
            spdc.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(!no_refit.contains("refit"), "{no_refit}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generate_then_fit_roundtrip() {
        let dir = std::env::temp_dir().join(format!("specrepro-cli-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("tiny.csv");
        let wrote = run(&argv(&[
            "generate",
            "--suite",
            "cpu2006",
            "--samples",
            "400",
            "--seed",
            "5",
            "--out",
            csv.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(wrote.contains("wrote 400 samples"), "{wrote}");
        let fitted = run(&argv(&[
            "fit",
            "--data",
            csv.to_str().unwrap(),
            "--min-leaf",
            "40",
        ]))
        .unwrap();
        assert!(fitted.contains("training MAE"), "{fitted}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
