//! `specrepro` binary entry point: thin wrapper over [`spec_cli::run`].

use std::io::Write as _;

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT / SPECREPRO_OBS enable
    // telemetry for the whole invocation; files are written on drop.
    let _obs = obskit::ObsSession::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match spec_cli::run(&args) {
        Ok(output) => {
            // Ignore broken pipes (e.g. `specrepro ... | head`).
            let _ = writeln!(std::io::stdout(), "{output}");
        }
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "error: {e}");
            std::process::exit(1);
        }
    }
}
