//! End-to-end CLI workflow through temporary files: generate -> fit ->
//! predict/classify/transfer/subset/crossval, across all three dataset
//! formats.

use spec_cli::{run, Flags};

fn argv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("spec_cli_tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn full_workflow_csv() {
    let data = tmp("wf.csv");
    let other = tmp("wf_other.csv");
    let model = tmp("wf_model.json");

    let out = run(&argv(&[
        "generate",
        "--suite",
        "cpu2006",
        "--samples",
        "3000",
        "--seed",
        "5",
        "--out",
        &data,
    ]))
    .expect("generate");
    assert!(out.contains("3000 samples"));

    let out = run(&argv(&[
        "generate",
        "--suite",
        "cpu2006",
        "--samples",
        "1500",
        "--seed",
        "6",
        "--out",
        &other,
    ]))
    .expect("generate other");
    assert!(out.contains("1500 samples"));

    let out = run(&argv(&[
        "fit",
        "--data",
        &data,
        "--min-leaf",
        "60",
        "--out",
        &model,
        "--print",
        "summary",
    ]))
    .expect("fit");
    assert!(out.contains("model tree:"), "{out}");
    assert!(out.contains("training MAE"));

    let out = run(&argv(&["predict", "--model", &model, "--data", &other])).expect("predict");
    assert!(out.contains("MAE = "), "{out}");

    let out = run(&argv(&["classify", "--model", &model, "--data", &other])).expect("classify");
    assert!(out.contains("Suite"));
    assert!(out.contains("LM1"));

    let out = run(&argv(&[
        "transfer", "--model", &model, "--train", &data, "--test", &other,
    ]))
    .expect("transfer");
    assert!(out.contains("verdict"), "{out}");
    assert!(out.contains("TRANSFERABLE"));

    let out = run(&argv(&[
        "subset", "--model", &model, "--data", &data, "--k", "4", "--method", "greedy",
    ]))
    .expect("subset");
    assert!(out.contains("coverage"), "{out}");

    let out = run(&argv(&["similar", "--model", &model, "--data", &data])).expect("similar");
    assert!(out.contains("most similar"));

    let out = run(&argv(&[
        "crossval",
        "--data",
        &data,
        "--folds",
        "3",
        "--min-leaf",
        "60",
    ]))
    .expect("crossval");
    assert!(out.contains("3-fold CV"), "{out}");

    let out = run(&argv(&[
        "explain", "--model", &model, "--data", &other, "--row", "7",
    ]))
    .expect("explain");
    assert!(out.contains("predicted CPI"), "{out}");
    assert!(out.contains("sample 7"));
    let err = run(&argv(&[
        "explain", "--model", &model, "--data", &other, "--row", "99999",
    ]))
    .unwrap_err();
    assert!(err.0.contains("out of range"));

    let out = run(&argv(&["stats", "--data", &data])).expect("stats");
    assert!(out.contains("CPI"), "{out}");
    assert!(out.contains("DtlbMiss"));
}

#[test]
fn arff_and_json_formats_roundtrip_through_cli() {
    let csv = tmp("fmt.csv");
    let arff = tmp("fmt.arff");
    let json = tmp("fmt.json");
    run(&argv(&[
        "generate",
        "--suite",
        "omp2001",
        "--samples",
        "500",
        "--seed",
        "7",
        "--out",
        &csv,
    ]))
    .expect("generate");

    // Convert by reading + writing through the library helpers.
    let ds = spec_cli::read_dataset(&csv).expect("read csv");
    spec_cli::write_dataset(&ds, &arff).expect("write arff");
    spec_cli::write_dataset(&ds, &json).expect("write json");

    let from_arff = spec_cli::read_dataset(&arff).expect("read arff");
    let from_json = spec_cli::read_dataset(&json).expect("read json");
    assert_eq!(from_arff.len(), ds.len());
    assert_eq!(from_json.len(), ds.len());

    // A model fit on one format predicts identically on another.
    let model = tmp("fmt_model.json");
    run(&argv(&[
        "fit",
        "--data",
        &arff,
        "--min-leaf",
        "30",
        "--out",
        &model,
    ]))
    .expect("fit on arff");
    let a = run(&argv(&["predict", "--model", &model, "--data", &json])).expect("predict json");
    let b = run(&argv(&["predict", "--model", &model, "--data", &csv])).expect("predict csv");
    assert_eq!(a, b);
}

#[test]
fn fit_print_modes() {
    let data = tmp("modes.csv");
    run(&argv(&[
        "generate",
        "--suite",
        "cpu2006",
        "--samples",
        "1000",
        "--seed",
        "8",
        "--out",
        &data,
    ]))
    .expect("generate");
    for (mode, marker) in [
        ("tree", "?"),
        ("models", "CPI ="),
        ("importance", "%"),
        ("summary", "model tree:"),
        ("dot", "digraph"),
    ] {
        let out = run(&argv(&[
            "fit",
            "--data",
            &data,
            "--min-leaf",
            "50",
            "--print",
            mode,
        ]))
        .expect(mode);
        assert!(out.contains(marker), "mode {mode}: {out}");
    }
    let err = run(&argv(&["fit", "--data", &data, "--print", "nonsense"])).unwrap_err();
    assert!(err.0.contains("unknown --print"));
}

#[test]
fn subset_k_bounds_checked() {
    let data = tmp("bounds.csv");
    let model = tmp("bounds_model.json");
    run(&argv(&[
        "generate",
        "--suite",
        "omp2001",
        "--samples",
        "800",
        "--seed",
        "9",
        "--out",
        &data,
    ]))
    .expect("generate");
    run(&argv(&[
        "fit",
        "--data",
        &data,
        "--min-leaf",
        "40",
        "--out",
        &model,
    ]))
    .expect("fit");
    let err = run(&argv(&[
        "subset", "--model", &model, "--data", &data, "--k", "0",
    ]))
    .unwrap_err();
    assert!(err.0.contains("out of range"));
    let err = run(&argv(&[
        "subset", "--model", &model, "--data", &data, "--k", "99",
    ]))
    .unwrap_err();
    assert!(err.0.contains("out of range"));
}

#[test]
fn flags_reachable_from_integration() {
    let f = Flags::parse(&argv(&["--k", "3"])).unwrap();
    assert_eq!(f.parsed_or::<usize>("k", 0).unwrap(), 3);
}
