//! The pipeline orchestrator: stage execution with two cache layers.
//!
//! [`PipelineContext`] resolves specs to artifacts through
//!
//! 1. an in-process memo table (`Arc`-shared, so the golden-snapshot
//!    tests and multi-artifact bins reuse one materialized dataset), and
//! 2. the content-addressed [`ArtifactStore`] on disk (shared across
//!    processes and, in CI, across workflow runs).
//!
//! Every resolution is counted in [`StageCounters`], which is how the
//! warm-path guarantees are *tested* rather than assumed: a warm rerun
//! of an experiment must show `datasets_generated == 0` and
//! `trees_fitted == 0` while producing bit-identical artifacts.

use crate::fingerprint::{dataset_content_fingerprint, Fingerprint, FingerprintHasher};
use crate::spec::{
    DatasetInput, DatasetSpec, PipelineError, Result, SplitPart, SplitSpec, TransferPart,
    TransferSplitSpec, TreeSpec,
};
use crate::store::ArtifactStore;
use modeltree::{M5Config, ModelTree};
use perfcounters::Dataset;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Counts of how each artifact this context resolved was obtained.
///
/// `*_generated` / `*_fitted` / `*_computed` mean real work happened;
/// `*_loaded` means the disk store supplied the artifact; memo hits are
/// not counted at all (the artifact was already in memory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Datasets produced by running the workload generator.
    pub datasets_generated: usize,
    /// Datasets decoded from the disk store.
    pub datasets_loaded: usize,
    /// Split stages executed (shuffling an in-memory base dataset).
    pub splits_computed: usize,
    /// Trees produced by running the M5' trainer.
    pub trees_fitted: usize,
    /// Trees decoded from the disk store.
    pub trees_loaded: usize,
    /// Artifacts whose on-disk bytes failed integrity or version checks
    /// and were evicted (each one degrades to a recompute).
    pub corrupt_evicted: usize,
}

/// The four parts of a materialized Section VI transfer protocol, in
/// the order the protocol produces them.
#[derive(Debug, Clone)]
pub struct TransferSplit {
    /// CPU2006 10% training subset.
    pub cpu_train: Arc<Dataset>,
    /// CPU2006 remainder (evaluation set).
    pub cpu_rest: Arc<Dataset>,
    /// OMP2001 10% training subset.
    pub omp_train: Arc<Dataset>,
    /// OMP2001 remainder (evaluation set).
    pub omp_rest: Arc<Dataset>,
}

/// Lazy `{:.1?}` rendering of a duration for structured event fields —
/// nothing is formatted unless a log/trace sink is active.
struct Elapsed(std::time::Duration);

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1?}", self.0)
    }
}

#[derive(Default)]
struct Inner {
    datasets: HashMap<u128, Arc<Dataset>>,
    trees: HashMap<u128, Arc<ModelTree>>,
    counters: StageCounters,
}

/// Orchestrates stage execution over a memo table and an optional disk
/// store. Cheap to share behind an `Arc`; all methods take `&self`.
pub struct PipelineContext {
    store: Option<ArtifactStore>,
    logging: bool,
    gen_threads: usize,
    inner: Mutex<Inner>,
}

impl PipelineContext {
    /// A context over the environment-selected disk store (see
    /// [`ArtifactStore::from_env`]). Stage logging is enabled unless
    /// `SPECREPRO_OBS_LOG` — or its legacy alias
    /// `SPECREPRO_PIPELINE_LOG` — is `0`/`off`.
    pub fn from_env() -> Self {
        PipelineContext::with_store(ArtifactStore::from_env())
            .with_logging(obskit::log_env_enabled())
    }

    /// A context with no disk store: memoizes in memory only. Used by
    /// tests that must observe true cold-path behavior.
    pub fn ephemeral() -> Self {
        PipelineContext {
            store: None,
            logging: false,
            gen_threads: 1,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A context over an explicit store (logging off).
    pub fn with_store(store: ArtifactStore) -> Self {
        PipelineContext {
            store: Some(store),
            ..PipelineContext::ephemeral()
        }
    }

    /// Enables or disables stage logging to stderr.
    #[must_use]
    pub fn with_logging(mut self, logging: bool) -> Self {
        self.logging = logging;
        self
    }

    /// Sets the thread-count execution hint for per-benchmark-stream
    /// generation (never affects artifact bytes).
    #[must_use]
    pub fn with_gen_threads(mut self, gen_threads: usize) -> Self {
        self.gen_threads = gen_threads.max(1);
        self
    }

    /// The disk store backing this context, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// A snapshot of the stage counters.
    pub fn counters(&self) -> StageCounters {
        self.inner.lock().expect("pipeline lock").counters
    }

    /// Emits one structured pipeline event: an instant event into the
    /// obskit trace buffer whenever tracing is enabled, plus a
    /// `[pipeline] name k=v` stderr line when this context's logging is
    /// on (the `SPECREPRO_PIPELINE_LOG` surface). Field values are only
    /// rendered when a sink is active.
    fn event(&self, name: &'static str, fields: &[(&str, &dyn std::fmt::Display)]) {
        obskit::emit("pipeline", name, fields, self.logging);
    }

    fn memo_dataset(&self, key: Fingerprint) -> Option<Arc<Dataset>> {
        self.inner
            .lock()
            .expect("pipeline lock")
            .datasets
            .get(&key.0)
            .cloned()
    }

    fn memo_tree(&self, key: Fingerprint) -> Option<Arc<ModelTree>> {
        self.inner
            .lock()
            .expect("pipeline lock")
            .trees
            .get(&key.0)
            .cloned()
    }

    /// Tries the disk store, counting loads and corrupt evictions.
    fn load_dataset(&self, key: Fingerprint, what: &str) -> Option<Dataset> {
        use obskit::metrics::{incr, Metric};
        let store = self.store.as_ref()?;
        let start = Instant::now();
        match store.load_dataset(key) {
            Ok(data) => {
                let mut inner = self.inner.lock().expect("pipeline lock");
                inner.counters.datasets_loaded += 1;
                drop(inner);
                incr(Metric::PipelineDatasetHits);
                self.event(
                    "dataset.hit",
                    &[
                        ("key", &key),
                        ("what", &what),
                        ("elapsed", &Elapsed(start.elapsed())),
                    ],
                );
                Some(data)
            }
            Err(None) => None,
            Err(Some(reason)) => {
                let mut inner = self.inner.lock().expect("pipeline lock");
                inner.counters.corrupt_evicted += 1;
                drop(inner);
                incr(Metric::PipelineCorruptEvictions);
                self.event(
                    "dataset.evict",
                    &[("key", &key), ("what", &what), ("reason", &reason)],
                );
                None
            }
        }
    }

    fn load_tree(&self, key: Fingerprint, what: &str) -> Option<ModelTree> {
        use obskit::metrics::{incr, Metric};
        let store = self.store.as_ref()?;
        let start = Instant::now();
        match store.load_tree(key) {
            Ok(tree) => {
                let mut inner = self.inner.lock().expect("pipeline lock");
                inner.counters.trees_loaded += 1;
                drop(inner);
                incr(Metric::PipelineTreeHits);
                self.event(
                    "tree.hit",
                    &[
                        ("key", &key),
                        ("what", &what),
                        ("elapsed", &Elapsed(start.elapsed())),
                    ],
                );
                Some(tree)
            }
            Err(None) => None,
            Err(Some(reason)) => {
                let mut inner = self.inner.lock().expect("pipeline lock");
                inner.counters.corrupt_evicted += 1;
                drop(inner);
                incr(Metric::PipelineCorruptEvictions);
                self.event(
                    "tree.evict",
                    &[("key", &key), ("what", &what), ("reason", &reason)],
                );
                None
            }
        }
    }

    /// Best-effort disk write (an unwritable cache degrades to
    /// recompute-always, never to failure).
    fn persist_dataset(&self, key: Fingerprint, data: &Dataset, what: &str) {
        if let Some(store) = &self.store {
            if let Err(e) = store.store_dataset(key, data) {
                self.event(
                    "dataset.store_failed",
                    &[("key", &key), ("what", &what), ("error", &e)],
                );
            }
        }
    }

    fn persist_tree(&self, key: Fingerprint, tree: &ModelTree, what: &str) {
        if let Some(store) = &self.store {
            if let Err(e) = store.store_tree(key, tree) {
                self.event(
                    "tree.store_failed",
                    &[("key", &key), ("what", &what), ("error", &e)],
                );
            }
        }
    }

    fn insert_dataset(&self, key: Fingerprint, data: Dataset) -> Arc<Dataset> {
        let data = Arc::new(data);
        let mut inner = self.inner.lock().expect("pipeline lock");
        inner.datasets.entry(key.0).or_insert_with(|| data).clone()
    }

    fn insert_tree(&self, key: Fingerprint, tree: ModelTree) -> Arc<ModelTree> {
        let tree = Arc::new(tree);
        let mut inner = self.inner.lock().expect("pipeline lock");
        inner.trees.entry(key.0).or_insert_with(|| tree).clone()
    }

    /// Resolves a generated dataset: memo, then store, then the
    /// workload generator.
    ///
    /// # Errors
    ///
    /// Fails when the spec names a benchmark its suite doesn't contain.
    pub fn dataset(&self, spec: &DatasetSpec) -> Result<Arc<Dataset>> {
        let key = spec.fingerprint();
        let what = spec.describe();
        if let Some(data) = self.memo_dataset(key) {
            return Ok(data);
        }
        if let Some(data) = self.load_dataset(key, &what) {
            return Ok(self.insert_dataset(key, data));
        }
        let start = Instant::now();
        let data = {
            let _span = obskit::span("pipeline", "pipeline.generate");
            spec.compute(self.gen_threads)?
        };
        {
            let mut inner = self.inner.lock().expect("pipeline lock");
            inner.counters.datasets_generated += 1;
        }
        obskit::metrics::incr(obskit::metrics::Metric::PipelineDatasetMisses);
        self.event(
            "dataset.miss",
            &[
                ("key", &key),
                ("what", &what),
                ("elapsed", &Elapsed(start.elapsed())),
            ],
        );
        self.persist_dataset(key, &data, &what);
        Ok(self.insert_dataset(key, data))
    }

    /// Resolves both halves of a random split. When both parts are
    /// cached the base dataset is not materialized at all.
    ///
    /// # Errors
    ///
    /// Propagates base-dataset resolution failures.
    pub fn split(&self, spec: &SplitSpec) -> Result<(Arc<Dataset>, Arc<Dataset>)> {
        let keys = [
            spec.part_fingerprint(SplitPart::First),
            spec.part_fingerprint(SplitPart::Second),
        ];
        let what = spec.describe();
        if let (Some(first), Some(second)) = (
            self.resolve_cached_dataset(keys[0], &what),
            self.resolve_cached_dataset(keys[1], &what),
        ) {
            return Ok((first, second));
        }
        let base = self.dataset(&spec.base)?;
        let start = Instant::now();
        let (first, second) = {
            let _span = obskit::span("pipeline", "pipeline.split");
            spec.compute(&base)
        };
        {
            let mut inner = self.inner.lock().expect("pipeline lock");
            inner.counters.splits_computed += 1;
        }
        obskit::metrics::incr(obskit::metrics::Metric::PipelineSplitsComputed);
        self.event(
            "split.miss",
            &[("what", &what), ("elapsed", &Elapsed(start.elapsed()))],
        );
        self.persist_dataset(keys[0], &first, &what);
        self.persist_dataset(keys[1], &second, &what);
        Ok((
            self.insert_dataset(keys[0], first),
            self.insert_dataset(keys[1], second),
        ))
    }

    /// Resolves all four parts of the Section VI transfer protocol.
    /// When every part is cached, neither suite dataset is materialized.
    ///
    /// # Errors
    ///
    /// Propagates suite-dataset resolution failures.
    pub fn transfer_split(&self, spec: &TransferSplitSpec) -> Result<TransferSplit> {
        let keys = TransferPart::ALL.map(|p| spec.part_fingerprint(p));
        let what = spec.describe();
        let cached: Vec<Option<Arc<Dataset>>> = keys
            .iter()
            .map(|&k| self.resolve_cached_dataset(k, &what))
            .collect();
        if cached.iter().all(Option::is_some) {
            let mut parts = cached.into_iter().map(|p| p.expect("checked above"));
            return Ok(TransferSplit {
                cpu_train: parts.next().expect("four parts"),
                cpu_rest: parts.next().expect("four parts"),
                omp_train: parts.next().expect("four parts"),
                omp_rest: parts.next().expect("four parts"),
            });
        }
        let cpu = self.dataset(&spec.cpu)?;
        let omp = self.dataset(&spec.omp)?;
        let start = Instant::now();
        let parts = {
            let _span = obskit::span("pipeline", "pipeline.split");
            spec.compute(&cpu, &omp)
        };
        {
            let mut inner = self.inner.lock().expect("pipeline lock");
            inner.counters.splits_computed += 1;
        }
        obskit::metrics::incr(obskit::metrics::Metric::PipelineSplitsComputed);
        self.event(
            "split.miss",
            &[("what", &what), ("elapsed", &Elapsed(start.elapsed()))],
        );
        let [cpu_train, cpu_rest, omp_train, omp_rest] = parts;
        for (key, part) in keys
            .iter()
            .zip([&cpu_train, &cpu_rest, &omp_train, &omp_rest])
        {
            self.persist_dataset(*key, part, &what);
        }
        Ok(TransferSplit {
            cpu_train: self.insert_dataset(keys[0], cpu_train),
            cpu_rest: self.insert_dataset(keys[1], cpu_rest),
            omp_train: self.insert_dataset(keys[2], omp_train),
            omp_rest: self.insert_dataset(keys[3], omp_rest),
        })
    }

    /// Memo-or-store lookup that never computes (used by split stages
    /// to short-circuit when every part is already cached).
    fn resolve_cached_dataset(&self, key: Fingerprint, what: &str) -> Option<Arc<Dataset>> {
        if let Some(data) = self.memo_dataset(key) {
            return Some(data);
        }
        let data = self.load_dataset(key, what)?;
        Some(self.insert_dataset(key, data))
    }

    /// Resolves the input dataset of a tree spec.
    ///
    /// # Errors
    ///
    /// Propagates dataset resolution failures.
    pub fn input_dataset(&self, input: &DatasetInput) -> Result<Arc<Dataset>> {
        match input {
            DatasetInput::Suite(spec) => self.dataset(spec),
            DatasetInput::SplitPart(split, part) => {
                let (first, second) = self.split(split)?;
                Ok(match part {
                    SplitPart::First => first,
                    SplitPart::Second => second,
                })
            }
            DatasetInput::TransferPart(split, part) => {
                let parts = self.transfer_split(split)?;
                Ok(match part {
                    TransferPart::CpuTrain => parts.cpu_train,
                    TransferPart::CpuRest => parts.cpu_rest,
                    TransferPart::OmpTrain => parts.omp_train,
                    TransferPart::OmpRest => parts.omp_rest,
                })
            }
        }
    }

    /// Resolves a fitted model tree: memo, then store, then the M5'
    /// trainer on the resolved input dataset. On a full hit the
    /// training data is never materialized.
    ///
    /// # Errors
    ///
    /// Propagates input resolution failures and trainer errors
    /// (degenerate training data, invalid configuration).
    pub fn tree(&self, spec: &TreeSpec) -> Result<Arc<ModelTree>> {
        let key = spec.fingerprint();
        let what = spec.describe();
        if let Some(tree) = self.memo_tree(key) {
            return Ok(tree);
        }
        if let Some(tree) = self.load_tree(key, &what) {
            return Ok(self.insert_tree(key, tree));
        }
        let data = self.input_dataset(&spec.input)?;
        self.fit_and_cache(key, &data, &spec.config, &what)
    }

    /// Resolves a tree over an *externally supplied* dataset (e.g. a
    /// CSV the CLI read from disk), keyed by the dataset's content
    /// fingerprint plus the trainer configuration.
    ///
    /// # Errors
    ///
    /// Propagates trainer errors.
    pub fn tree_for(&self, data: &Dataset, config: &M5Config) -> Result<Arc<ModelTree>> {
        let mut h = FingerprintHasher::new("tree");
        let content = dataset_content_fingerprint(data);
        h.write_u64(content.0 as u64);
        h.write_u64((content.0 >> 64) as u64);
        crate::fingerprint::Fingerprintable::fingerprint_into(config, &mut h);
        let key = h.finish();
        let what = format!("m5(min_leaf={}) on external data", config.min_leaf);
        if let Some(tree) = self.memo_tree(key) {
            return Ok(tree);
        }
        if let Some(tree) = self.load_tree(key, &what) {
            return Ok(self.insert_tree(key, tree));
        }
        self.fit_and_cache(key, data, config, &what)
    }

    fn fit_and_cache(
        &self,
        key: Fingerprint,
        data: &Dataset,
        config: &M5Config,
        what: &str,
    ) -> Result<Arc<ModelTree>> {
        let start = Instant::now();
        let tree = {
            let _span = obskit::span("pipeline", "pipeline.fit");
            ModelTree::fit(data, config).map_err(PipelineError::from)?
        };
        {
            let mut inner = self.inner.lock().expect("pipeline lock");
            inner.counters.trees_fitted += 1;
        }
        obskit::metrics::incr(obskit::metrics::Metric::PipelineTreeMisses);
        self.event(
            "tree.miss",
            &[
                ("key", &key),
                ("what", &what),
                ("elapsed", &Elapsed(start.elapsed())),
            ],
        );
        self.persist_tree(key, &tree, what);
        Ok(self.insert_tree(key, tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{suite_tree_config, SuiteKind};

    fn small_spec() -> DatasetSpec {
        DatasetSpec::new(SuiteKind::cpu2006(), 600, 11)
    }

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("specrepro-ctx-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir)
    }

    #[test]
    fn memoizes_within_a_context() {
        let ctx = PipelineContext::ephemeral();
        let a = ctx.dataset(&small_spec()).unwrap();
        let b = ctx.dataset(&small_spec()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.counters().datasets_generated, 1);
    }

    #[test]
    fn warm_context_does_no_work() {
        let store = temp_store("warm");
        let spec = TreeSpec::new(small_spec(), suite_tree_config(600));
        let cold = PipelineContext::with_store(store.clone());
        let cold_tree = cold.tree(&spec).unwrap();
        assert_eq!(cold.counters().datasets_generated, 1);
        assert_eq!(cold.counters().trees_fitted, 1);

        let warm = PipelineContext::with_store(store.clone());
        let warm_tree = warm.tree(&spec).unwrap();
        let c = warm.counters();
        assert_eq!(c.datasets_generated, 0);
        assert_eq!(c.trees_fitted, 0);
        assert_eq!(c.trees_loaded, 1);
        // The training dataset is never even touched on a tree hit.
        assert_eq!(c.datasets_loaded, 0);
        assert_eq!(*warm_tree, *cold_tree);
        store.clear().unwrap();
    }

    #[test]
    fn warm_split_skips_base_generation() {
        let store = temp_store("split");
        let spec = SplitSpec::new(small_spec(), 5, 0.5);
        let cold = PipelineContext::with_store(store.clone());
        let (a1, b1) = cold.split(&spec).unwrap();
        assert_eq!(cold.counters().datasets_generated, 1);
        assert_eq!(cold.counters().splits_computed, 1);

        let warm = PipelineContext::with_store(store.clone());
        let (a2, b2) = warm.split(&spec).unwrap();
        let c = warm.counters();
        assert_eq!(c.datasets_generated, 0);
        assert_eq!(c.splits_computed, 0);
        assert_eq!(c.datasets_loaded, 2);
        assert_eq!(*a1, *a2);
        assert_eq!(*b1, *b2);
        store.clear().unwrap();
    }

    #[test]
    fn transfer_split_fully_cached_on_rerun() {
        let store = temp_store("transfer");
        let spec = TransferSplitSpec {
            cpu: DatasetSpec::new(SuiteKind::cpu2006(), 500, 1),
            omp: DatasetSpec::new(SuiteKind::omp2001(), 400, 2),
            seed: 3,
            fraction: 0.10,
        };
        let cold = PipelineContext::with_store(store.clone());
        let cold_parts = cold.transfer_split(&spec).unwrap();
        assert_eq!(cold.counters().datasets_generated, 2);

        let warm = PipelineContext::with_store(store.clone());
        let warm_parts = warm.transfer_split(&spec).unwrap();
        let c = warm.counters();
        assert_eq!(c.datasets_generated, 0);
        assert_eq!(c.splits_computed, 0);
        assert_eq!(c.datasets_loaded, 4);
        assert_eq!(*cold_parts.cpu_train, *warm_parts.cpu_train);
        assert_eq!(*cold_parts.omp_rest, *warm_parts.omp_rest);
        store.clear().unwrap();
    }

    #[test]
    fn corrupt_artifact_recomputes_identically() {
        let store = temp_store("heal");
        let spec = small_spec();
        let key = spec.fingerprint();
        let cold = PipelineContext::with_store(store.clone());
        let original = cold.dataset(&spec).unwrap();

        // Flip one byte in the stored artifact.
        let dir = store.root().join("v1").join("datasets");
        let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap();
        let mut bytes = std::fs::read(entry.path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(entry.path(), &bytes).unwrap();

        let warm = PipelineContext::with_store(store.clone());
        let healed = warm.dataset(&spec).unwrap();
        let c = warm.counters();
        assert_eq!(c.corrupt_evicted, 1);
        assert_eq!(c.datasets_generated, 1);
        assert_eq!(*healed, *original);
        // The recompute re-populated the store.
        assert!(store.load_dataset(key).is_ok());
        store.clear().unwrap();
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let ctx = PipelineContext::ephemeral();
        let spec = small_spec().with_benchmark("999.nonesuch");
        let err = ctx.dataset(&spec).unwrap_err();
        assert!(err.to_string().contains("999.nonesuch"));
    }
}
