//! Typed stage specifications and the canonical experiment registry.
//!
//! A spec is a *complete, self-describing recipe* for one pipeline
//! artifact: everything that can affect the output is a field, and the
//! [`Fingerprintable`] impl folds every field (plus the schema version
//! and a stage domain tag) into the content-addressed cache key. The
//! stage graph:
//!
//! ```text
//! DatasetSpec ──────────────► Dataset            (suite generation)
//!   ├─ SplitSpec ───────────► (first, second)    (one random split)
//!   └─ TransferSplitSpec ───► TransferSplit      (paper §VI protocol)
//! DatasetInput + M5Config ──► TreeSpec ─► ModelTree
//! ```
//!
//! The registry constants at the bottom are the single source of truth
//! for the experiment seeds and sizes every entry point shares (they
//! were previously duplicated in `spec-bench`, which now re-exports
//! them from here).

use crate::fingerprint::{Fingerprint, FingerprintHasher, Fingerprintable};
use modeltree::M5Config;
use perfcounters::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};
use workloads::registry::{SuiteDef, SuiteRegistry};

/// A pipeline failure: unknown benchmark, degenerate training data, …
#[derive(Debug)]
pub struct PipelineError(pub String);

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PipelineError {}

impl From<modeltree::TreeError> for PipelineError {
    fn from(e: modeltree::TreeError) -> Self {
        PipelineError(e.to_string())
    }
}

/// Convenience alias for pipeline results.
pub type Result<T> = std::result::Result<T, PipelineError>;

/// Which registered suite a dataset comes from: a handle onto one
/// [`SuiteDef`] in the generation-parameterized suite registry.
///
/// Identity is the definition's *tag* (two handles onto equally-tagged
/// defs are equal), and the fingerprint identity is
/// [`SuiteKind::fingerprint_token`]: the frozen pre-registry literal
/// for the two legacy suites, a content fingerprint of the full
/// definition for everything newer.
#[derive(Clone, Copy)]
pub struct SuiteKind {
    def: &'static SuiteDef,
}

impl std::fmt::Debug for SuiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SuiteKind({})", self.def.tag)
    }
}

impl PartialEq for SuiteKind {
    fn eq(&self, other: &Self) -> bool {
        self.def.tag == other.def.tag
    }
}

impl Eq for SuiteKind {}

impl SuiteKind {
    /// Wraps one registered (or ad-hoc static) suite definition.
    pub fn from_def(def: &'static SuiteDef) -> Self {
        SuiteKind { def }
    }

    /// SPEC CPU2006 (29 single-threaded benchmarks, generation 2006).
    pub fn cpu2006() -> Self {
        SuiteKind::from_def(&workloads::registry::CPU2006)
    }

    /// SPEC OMP2001 medium (11 multi-threaded benchmarks, generation
    /// 2001).
    pub fn omp2001() -> Self {
        SuiteKind::from_def(&workloads::registry::OMP2001)
    }

    /// SPEC CPU2017 rate (23 single-threaded benchmarks, generation
    /// 2017).
    pub fn cpu2017() -> Self {
        SuiteKind::from_def(&workloads::registry::CPU2017)
    }

    /// The CPU2026-style suite (15 single-threaded benchmarks,
    /// generation 2026).
    pub fn cpu2026() -> Self {
        SuiteKind::from_def(&workloads::registry::CPU2026)
    }

    /// Looks a suite up in the global registry by its tag.
    pub fn by_tag(tag: &str) -> Option<Self> {
        SuiteRegistry::global().by_tag(tag).map(SuiteKind::from_def)
    }

    /// Every suite in the global registry, in registry order.
    pub fn all() -> Vec<SuiteKind> {
        SuiteRegistry::global()
            .defs()
            .iter()
            .map(|&def| SuiteKind::from_def(def))
            .collect()
    }

    /// Stable registry tag, used in logs and the CLI.
    pub fn tag(self) -> &'static str {
        self.def.tag
    }

    /// Human-readable suite name.
    pub fn display_name(self) -> &'static str {
        self.def.display_name
    }

    /// Benchmark-suite generation year.
    pub fn generation(self) -> u16 {
        self.def.generation
    }

    /// The underlying registry definition.
    pub fn def(self) -> &'static SuiteDef {
        self.def
    }

    /// The canonical whole-suite generation seed of this suite (the
    /// registry constants for the suites that have one; a stable
    /// tag-derived seed otherwise).
    pub fn canonical_seed(self) -> u64 {
        match self.def.tag {
            "cpu2006" => SEED_CPU2006,
            "omp2001" => SEED_OMP2001,
            "cpu2017" => SEED_CPU2017,
            "cpu2026" => SEED_CPU2026,
            other => {
                // FNV-1a over the tag: stable, content-derived.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in other.bytes() {
                    h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            }
        }
    }

    /// The token identifying this suite inside dataset fingerprints:
    /// the frozen literal (`"cpu2006"` / `"omp2001"`) for the legacy
    /// suites — keeping every pre-registry artifact key bit-stable —
    /// and `"sdef-<32 hex digits>"` of the definition's content
    /// fingerprint for every other suite. Computed once per definition
    /// and cached for the life of the process.
    pub fn fingerprint_token(self) -> &'static str {
        if let Some(token) = self.def.legacy_token {
            return token;
        }
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static TOKENS: OnceLock<Mutex<HashMap<usize, &'static str>>> = OnceLock::new();
        let tokens = TOKENS.get_or_init(|| Mutex::new(HashMap::new()));
        let key = self.def as *const SuiteDef as usize;
        let mut map = tokens.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key).or_insert_with(|| {
            let fp = crate::fingerprint::suite_def_fingerprint(self.def);
            Box::leak(format!("sdef-{}", fp.to_hex()).into_boxed_str())
        })
    }

    /// Builds the suite model.
    pub fn materialize(self) -> Suite {
        self.def.materialize()
    }
}

/// How the generator consumes randomness (the two modes produce
/// different — but individually deterministic — datasets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RngStreams {
    /// One sequential stream ([`Suite::generate`]); byte-stable for the
    /// historical seeds, used by every checked-in experiment.
    #[default]
    Single,
    /// Per-benchmark streams ([`Suite::generate_par`]); thread-count
    /// invariant, used when generation itself should parallelize.
    PerBenchmark,
}

/// Recipe for one generated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which suite generates the samples.
    pub suite: SuiteKind,
    /// Optional memory-pressure rescale of the suite
    /// ([`Suite::with_memory_pressure`]), modeling other input sets.
    pub memory_pressure: Option<f64>,
    /// Restrict generation to one benchmark (by full name), as in the
    /// per-member transfer experiments. `None` = whole suite.
    pub benchmark: Option<String>,
    /// Number of interval samples.
    pub n_samples: usize,
    /// Seed of the generator's RNG stream.
    pub seed: u64,
    /// Counter-architecture and cost-model configuration.
    pub config: GeneratorConfig,
    /// RNG stream layout (see [`RngStreams`]).
    pub streams: RngStreams,
}

impl DatasetSpec {
    /// A whole-suite dataset with the default generator configuration.
    pub fn new(suite: SuiteKind, n_samples: usize, seed: u64) -> Self {
        DatasetSpec {
            suite,
            memory_pressure: None,
            benchmark: None,
            n_samples,
            seed,
            config: GeneratorConfig::default(),
            streams: RngStreams::Single,
        }
    }

    /// The canonical 60k-sample dataset of any registered suite
    /// ([`N_SAMPLES`] samples at the suite's canonical seed).
    pub fn canonical(suite: SuiteKind) -> Self {
        DatasetSpec::new(suite, N_SAMPLES, suite.canonical_seed())
    }

    /// The canonical 60k-sample SPEC CPU2006 experiment dataset.
    pub fn cpu2006() -> Self {
        DatasetSpec::canonical(SuiteKind::cpu2006())
    }

    /// The canonical 60k-sample SPEC OMP2001 experiment dataset.
    pub fn omp2001() -> Self {
        DatasetSpec::canonical(SuiteKind::omp2001())
    }

    /// Overrides the sample count.
    #[must_use]
    pub fn with_samples(mut self, n_samples: usize) -> Self {
        self.n_samples = n_samples;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the generator configuration.
    #[must_use]
    pub fn with_config(mut self, config: GeneratorConfig) -> Self {
        self.config = config;
        self
    }

    /// Applies a memory-pressure factor (models other input sets).
    #[must_use]
    pub fn with_memory_pressure(mut self, factor: f64) -> Self {
        self.memory_pressure = Some(factor);
        self
    }

    /// Restricts generation to one benchmark.
    #[must_use]
    pub fn with_benchmark(mut self, name: &str) -> Self {
        self.benchmark = Some(name.to_owned());
        self
    }

    /// Selects the RNG stream layout.
    #[must_use]
    pub fn with_streams(mut self, streams: RngStreams) -> Self {
        self.streams = streams;
        self
    }

    /// The stage cache key.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new("dataset");
        self.fingerprint_into(&mut h);
        h.finish()
    }

    /// Human-readable one-line description for stage logs.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "{} n={} seed={}",
            self.suite.tag(),
            self.n_samples,
            self.seed
        );
        if let Some(f) = self.memory_pressure {
            out.push_str(&format!(" mem×{f}"));
        }
        if let Some(b) = &self.benchmark {
            out.push_str(&format!(" bench={b}"));
        }
        if self.config != GeneratorConfig::default() {
            out.push_str(" cfg=custom");
        }
        if self.streams == RngStreams::PerBenchmark {
            out.push_str(" streams=per-benchmark");
        }
        out
    }

    /// Runs the generation stage (no caching — the context handles
    /// that). `gen_threads` only affects wall clock in
    /// [`RngStreams::PerBenchmark`] mode, never the output.
    ///
    /// # Errors
    ///
    /// Fails when [`DatasetSpec::benchmark`] names a benchmark the
    /// suite does not contain.
    pub fn compute(&self, gen_threads: usize) -> Result<Dataset> {
        let mut suite = self.suite.materialize();
        if let Some(factor) = self.memory_pressure {
            suite = suite.with_memory_pressure(factor);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        match &self.benchmark {
            Some(name) => suite
                .generate_benchmark(&mut rng, name, self.n_samples, &self.config)
                .ok_or_else(|| {
                    PipelineError(format!("benchmark {name:?} not in {}", suite.name()))
                }),
            None => Ok(match self.streams {
                RngStreams::Single => suite.generate(&mut rng, self.n_samples, &self.config),
                RngStreams::PerBenchmark => {
                    suite.generate_par(&mut rng, self.n_samples, &self.config, gen_threads)
                }
            }),
        }
    }
}

impl Fingerprintable for DatasetSpec {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_str(self.suite.fingerprint_token());
        h.write_opt_f64(self.memory_pressure);
        h.write_opt_str(self.benchmark.as_deref());
        h.write_usize(self.n_samples);
        h.write_u64(self.seed);
        self.config.fingerprint_into(h);
        h.write_str(match self.streams {
            RngStreams::Single => "single",
            RngStreams::PerBenchmark => "per-benchmark",
        });
    }
}

/// Which half of a [`SplitSpec`] an artifact is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPart {
    /// The `ceil(fraction * len)`-sample subset.
    First,
    /// The remainder.
    Second,
}

/// Recipe for one random train/test split of a generated dataset
/// (`Dataset::split_random` with a dedicated seed).
#[derive(Debug, Clone, PartialEq)]
pub struct SplitSpec {
    /// The dataset being split.
    pub base: DatasetSpec,
    /// Seed of the split permutation's RNG.
    pub seed: u64,
    /// Fraction landing in the first part.
    pub fraction: f64,
}

impl SplitSpec {
    /// Creates a split recipe.
    pub fn new(base: DatasetSpec, seed: u64, fraction: f64) -> Self {
        SplitSpec {
            base,
            seed,
            fraction,
        }
    }

    /// The cache key of one part.
    pub fn part_fingerprint(&self, part: SplitPart) -> Fingerprint {
        let mut h = FingerprintHasher::new("split-part");
        self.base.fingerprint_into(&mut h);
        h.write_u64(self.seed);
        h.write_f64(self.fraction);
        h.write_str(match part {
            SplitPart::First => "first",
            SplitPart::Second => "second",
        });
        h.finish()
    }

    /// Human-readable description for stage logs.
    pub fn describe(&self) -> String {
        format!(
            "split {:.2}/{:.2} seed={} of [{}]",
            self.fraction,
            1.0 - self.fraction,
            self.seed,
            self.base.describe()
        )
    }

    /// The first part's length, computable without materializing the
    /// base dataset (`split_random` takes `ceil(fraction * len)`, and a
    /// generated dataset's length is exactly its spec's `n_samples`).
    pub fn first_len(&self) -> usize {
        (self.fraction * self.base.n_samples as f64).ceil() as usize
    }

    /// Runs the split stage on a materialized base dataset.
    pub fn compute(&self, base: &Dataset) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        base.split_random(&mut rng, self.fraction)
    }
}

/// The four parts of the paper's Section VI split protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferPart {
    /// CPU2006 10% training subset.
    CpuTrain,
    /// CPU2006 remainder.
    CpuRest,
    /// OMP2001 10% training subset.
    OmpTrain,
    /// OMP2001 remainder.
    OmpRest,
}

impl TransferPart {
    /// All four parts, in protocol order.
    pub const ALL: [TransferPart; 4] = [
        TransferPart::CpuTrain,
        TransferPart::CpuRest,
        TransferPart::OmpTrain,
        TransferPart::OmpRest,
    ];

    fn tag(self) -> &'static str {
        match self {
            TransferPart::CpuTrain => "cpu-train",
            TransferPart::CpuRest => "cpu-rest",
            TransferPart::OmpTrain => "omp-train",
            TransferPart::OmpRest => "omp-rest",
        }
    }
}

/// Recipe for the paper's Section VI transfer protocol: **one** RNG
/// stream splits the CPU2006 dataset first, then (with the advanced
/// stream state) the OMP2001 dataset — the split order is part of the
/// artifact, so the whole protocol is a single stage with four outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferSplitSpec {
    /// The CPU2006 dataset recipe.
    pub cpu: DatasetSpec,
    /// The OMP2001 dataset recipe.
    pub omp: DatasetSpec,
    /// Seed of the shared split stream.
    pub seed: u64,
    /// Training fraction (the paper uses 0.10).
    pub fraction: f64,
}

impl TransferSplitSpec {
    /// The canonical Section VI protocol over the canonical datasets.
    pub fn canonical() -> Self {
        TransferSplitSpec {
            cpu: DatasetSpec::cpu2006(),
            omp: DatasetSpec::omp2001(),
            seed: SEED_SPLIT,
            fraction: 0.10,
        }
    }

    /// The cache key of one part.
    pub fn part_fingerprint(&self, part: TransferPart) -> Fingerprint {
        let mut h = FingerprintHasher::new("transfer-part");
        self.cpu.fingerprint_into(&mut h);
        self.omp.fingerprint_into(&mut h);
        h.write_u64(self.seed);
        h.write_f64(self.fraction);
        h.write_str(part.tag());
        h.finish()
    }

    /// Human-readable description for stage logs.
    pub fn describe(&self) -> String {
        format!(
            "transfer-split {:.0}% seed={} of [{}] + [{}]",
            100.0 * self.fraction,
            self.seed,
            self.cpu.describe(),
            self.omp.describe()
        )
    }

    /// The CPU training part's length without materializing anything
    /// (`split_random` takes `ceil(fraction * len)`).
    pub fn cpu_train_len(&self) -> usize {
        (self.fraction * self.cpu.n_samples as f64).ceil() as usize
    }

    /// The OMP training part's length without materializing anything.
    pub fn omp_train_len(&self) -> usize {
        (self.fraction * self.omp.n_samples as f64).ceil() as usize
    }

    /// Runs the protocol on materialized suite datasets, returning the
    /// parts in [`TransferPart::ALL`] order.
    pub fn compute(&self, cpu: &Dataset, omp: &Dataset) -> [Dataset; 4] {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (cpu_train, cpu_rest) = cpu.split_random(&mut rng, self.fraction);
        let (omp_train, omp_rest) = omp.split_random(&mut rng, self.fraction);
        [cpu_train, cpu_rest, omp_train, omp_rest]
    }
}

/// Where a tree's training data comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetInput {
    /// A whole generated dataset.
    Suite(DatasetSpec),
    /// One half of a random split.
    SplitPart(SplitSpec, SplitPart),
    /// One part of the Section VI transfer protocol.
    TransferPart(TransferSplitSpec, TransferPart),
}

impl DatasetInput {
    /// The cache key of the input dataset itself.
    pub fn fingerprint(&self) -> Fingerprint {
        match self {
            DatasetInput::Suite(spec) => spec.fingerprint(),
            DatasetInput::SplitPart(split, part) => split.part_fingerprint(*part),
            DatasetInput::TransferPart(split, part) => split.part_fingerprint(*part),
        }
    }

    /// Human-readable description for stage logs.
    pub fn describe(&self) -> String {
        match self {
            DatasetInput::Suite(spec) => spec.describe(),
            DatasetInput::SplitPart(split, part) => {
                format!("{:?} of {}", part, split.describe())
            }
            DatasetInput::TransferPart(split, part) => {
                format!("{:?} of {}", part, split.describe())
            }
        }
    }
}

/// Recipe for one fitted M5' model tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSpec {
    /// The training data recipe.
    pub input: DatasetInput,
    /// The trainer configuration (`n_threads` is excluded from the
    /// fingerprint — training is bit-identical for every value).
    pub config: M5Config,
}

impl TreeSpec {
    /// Creates a tree recipe over a whole generated dataset.
    pub fn new(dataset: DatasetSpec, config: M5Config) -> Self {
        TreeSpec {
            input: DatasetInput::Suite(dataset),
            config,
        }
    }

    /// The headline suite tree of a dataset spec: the paper's
    /// tens-of-leaves configuration via [`suite_tree_config`].
    pub fn suite_tree(dataset: DatasetSpec) -> Self {
        let config = suite_tree_config(dataset.n_samples);
        TreeSpec::new(dataset, config)
    }

    /// The stage cache key: the input's key plus the trainer
    /// configuration.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new("tree");
        let input = self.input.fingerprint();
        h.write_u64(input.0 as u64);
        h.write_u64((input.0 >> 64) as u64);
        self.config.fingerprint_into(&mut h);
        h.finish()
    }

    /// Human-readable description for stage logs.
    pub fn describe(&self) -> String {
        format!(
            "m5(min_leaf={}, sd={}) on [{}]",
            self.config.min_leaf,
            self.config.sd_fraction,
            self.input.describe()
        )
    }
}

// --- Canonical experiment registry -------------------------------------

/// Seed for the SPEC CPU2006 dataset used by all experiments.
pub const SEED_CPU2006: u64 = 20_080_401;
/// Seed for the SPEC OMP2001 dataset used by all experiments.
pub const SEED_OMP2001: u64 = 20_080_402;
/// Seed for train/test splitting in the transferability experiments.
pub const SEED_SPLIT: u64 = 20_080_403;
/// Seed for the SPEC CPU2017 dataset used by the transfer matrix.
pub const SEED_CPU2017: u64 = 20_080_404;
/// Seed for the CPU2026-style dataset used by the transfer matrix.
pub const SEED_CPU2026: u64 = 20_080_405;
/// Seed of the cross-generation transfer-matrix split protocol.
pub const SEED_MATRIX: u64 = 20_080_406;
/// Number of interval samples generated per suite.
pub const N_SAMPLES: usize = 60_000;

/// The M5' configuration used for the headline suite trees. The paper
/// "varied M5' algorithm parameters to achieve a balance between
/// tractable model size and good prediction accuracy"; these settings
/// land in the same tens-of-leaves band as Figures 1 and 2.
pub fn suite_tree_config(n_samples: usize) -> M5Config {
    M5Config::default()
        .with_min_leaf((n_samples / 200).max(4))
        .with_sd_fraction(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_suites_fingerprint_by_frozen_token() {
        // The artifact-store compatibility contract: the two
        // pre-registry suites keep their literal tokens forever.
        assert_eq!(SuiteKind::cpu2006().fingerprint_token(), "cpu2006");
        assert_eq!(SuiteKind::omp2001().fingerprint_token(), "omp2001");
    }

    #[test]
    fn new_suites_fingerprint_by_content() {
        for kind in [SuiteKind::cpu2017(), SuiteKind::cpu2026()] {
            let token = kind.fingerprint_token();
            assert!(token.starts_with("sdef-"), "{token}");
            assert_eq!(token.len(), "sdef-".len() + 32, "{token}");
            // Stable across calls (cached) and equal to the direct
            // content fingerprint.
            assert_eq!(token, kind.fingerprint_token());
            let direct = crate::fingerprint::suite_def_fingerprint(kind.def());
            assert_eq!(token, format!("sdef-{}", direct.to_hex()));
        }
        assert_ne!(
            SuiteKind::cpu2017().fingerprint_token(),
            SuiteKind::cpu2026().fingerprint_token()
        );
    }

    #[test]
    fn registry_lookup_round_trips_every_suite() {
        let all = SuiteKind::all();
        assert_eq!(all.len(), 4);
        for kind in all {
            assert_eq!(SuiteKind::by_tag(kind.tag()), Some(kind));
        }
        assert_eq!(SuiteKind::by_tag("spec95"), None);
    }

    #[test]
    fn canonical_seeds_are_distinct_per_suite() {
        let seeds: std::collections::BTreeSet<u64> = SuiteKind::all()
            .into_iter()
            .map(SuiteKind::canonical_seed)
            .collect();
        assert_eq!(seeds.len(), 4);
        assert_eq!(SuiteKind::cpu2017().canonical_seed(), SEED_CPU2017);
        assert_eq!(SuiteKind::cpu2026().canonical_seed(), SEED_CPU2026);
    }

    #[test]
    fn canonical_dataset_specs_cover_new_generations() {
        let spec = DatasetSpec::canonical(SuiteKind::cpu2017());
        assert_eq!(spec.n_samples, N_SAMPLES);
        assert_eq!(spec.seed, SEED_CPU2017);
        // And the canonical legacy constructors route through the same
        // path without changing their keys.
        assert_eq!(
            DatasetSpec::canonical(SuiteKind::cpu2006()).fingerprint(),
            DatasetSpec::cpu2006().fingerprint()
        );
    }

    #[test]
    fn canonical_specs_match_legacy_constants() {
        let cpu = DatasetSpec::cpu2006();
        assert_eq!(cpu.seed, SEED_CPU2006);
        assert_eq!(cpu.n_samples, N_SAMPLES);
        assert_eq!(suite_tree_config(60_000).min_leaf, 300);
        assert_eq!(suite_tree_config(100).min_leaf, 4);
    }

    #[test]
    fn dataset_compute_matches_direct_generation() {
        let spec = DatasetSpec::new(SuiteKind::cpu2006(), 300, 7);
        let via_spec = spec.compute(1).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let direct = Suite::cpu2006().generate(&mut rng, 300, &GeneratorConfig::default());
        assert_eq!(via_spec, direct);
    }

    #[test]
    fn every_spec_field_changes_the_fingerprint() {
        let base = DatasetSpec::new(SuiteKind::cpu2006(), 1000, 1);
        let mut custom = GeneratorConfig::default();
        custom.cost.noise_sigma = 0.01;
        let variants = [
            DatasetSpec::new(SuiteKind::omp2001(), 1000, 1),
            base.clone().with_samples(1001),
            base.clone().with_seed(2),
            base.clone().with_memory_pressure(1.0),
            base.clone().with_benchmark("429.mcf"),
            base.clone().with_config(custom),
            base.clone().with_streams(RngStreams::PerBenchmark),
        ];
        let k0 = base.fingerprint();
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(k0);
        for (i, v) in variants.iter().enumerate() {
            assert!(seen.insert(v.fingerprint()), "variant {i} collided");
        }
    }

    #[test]
    fn split_parts_have_distinct_keys() {
        let split = SplitSpec::new(DatasetSpec::cpu2006(), SEED_SPLIT, 0.5);
        assert_ne!(
            split.part_fingerprint(SplitPart::First),
            split.part_fingerprint(SplitPart::Second)
        );
        let other = SplitSpec::new(DatasetSpec::cpu2006(), SEED_SPLIT, 0.25);
        assert_ne!(
            split.part_fingerprint(SplitPart::First),
            other.part_fingerprint(SplitPart::First)
        );
    }

    #[test]
    fn transfer_parts_have_distinct_keys() {
        let spec = TransferSplitSpec::canonical();
        let keys: std::collections::BTreeSet<_> = TransferPart::ALL
            .iter()
            .map(|&p| spec.part_fingerprint(p))
            .collect();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn tree_key_tracks_input_and_config() {
        let a = TreeSpec::suite_tree(DatasetSpec::cpu2006());
        let b = TreeSpec::suite_tree(DatasetSpec::omp2001());
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = TreeSpec::new(
            DatasetSpec::cpu2006(),
            suite_tree_config(N_SAMPLES).with_smoothing(false),
        );
        assert_ne!(a.fingerprint(), c.fingerprint());
        // The dataset artifact and the tree artifact never share a key.
        assert_ne!(a.fingerprint(), DatasetSpec::cpu2006().fingerprint());
        // n_threads is an execution hint, not an input.
        let d = TreeSpec::new(
            DatasetSpec::cpu2006(),
            suite_tree_config(N_SAMPLES).with_n_threads(8),
        );
        assert_eq!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn transfer_split_protocol_order() {
        // The one-stream protocol: cpu split consumes rng state before
        // the omp split, so the omp parts depend on the cpu dataset
        // length — exactly the legacy artifact's behavior.
        let spec = TransferSplitSpec {
            cpu: DatasetSpec::new(SuiteKind::cpu2006(), 400, 1),
            omp: DatasetSpec::new(SuiteKind::omp2001(), 300, 2),
            seed: 9,
            fraction: 0.10,
        };
        let cpu = spec.cpu.compute(1).unwrap();
        let omp = spec.omp.compute(1).unwrap();
        let [cpu_train, cpu_rest, omp_train, omp_rest] = spec.compute(&cpu, &omp);
        assert_eq!(cpu_train.len(), 40);
        assert_eq!(cpu_rest.len(), 360);
        assert_eq!(omp_train.len() + omp_rest.len(), 300);
        let mut rng = StdRng::seed_from_u64(9);
        let (legacy_cpu_train, _) = cpu.split_random(&mut rng, 0.10);
        let (legacy_omp_train, _) = omp.split_random(&mut rng, 0.10);
        assert_eq!(cpu_train, legacy_cpu_train);
        assert_eq!(omp_train, legacy_omp_train);
    }
}
