//! Broken-pipe-safe standard output.
//!
//! Experiment bins are routinely piped into `head` or `less`; when the
//! reader closes early, `println!` panics on the resulting `EPIPE`.
//! [`stdout`] returns a writer that swallows `BrokenPipe` (reporting
//! the bytes as written), so `writeln!(out, ...)` in a loop degrades to
//! a silent no-op once the consumer goes away while every other I/O
//! error still surfaces.

use std::io::{self, ErrorKind, Write};

/// A stdout handle whose writes never fail with `BrokenPipe`.
pub struct PipeSafeStdout {
    inner: io::Stdout,
}

impl Write for PipeSafeStdout {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.inner.write(buf) {
            Err(e) if e.kind() == ErrorKind::BrokenPipe => Ok(buf.len()),
            other => other,
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.inner.flush() {
            Err(e) if e.kind() == ErrorKind::BrokenPipe => Ok(()),
            other => other,
        }
    }
}

/// A broken-pipe-safe handle to standard output.
pub fn stdout() -> PipeSafeStdout {
    PipeSafeStdout {
        inner: io::stdout(),
    }
}

/// Prints a full rendered artifact to stdout, ignoring `BrokenPipe`
/// (convenience for bins that render once and print once).
pub fn print(text: &str) {
    let mut out = stdout();
    let _ = out.write_all(text.as_bytes());
    let _ = out.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_pass_through() {
        // Can't force EPIPE portably in a unit test; exercise the happy
        // path so the adapter at least round-trips lengths correctly.
        let mut out = stdout();
        assert_eq!(out.write(b"").unwrap(), 0);
        out.flush().unwrap();
    }
}
