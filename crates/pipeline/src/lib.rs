//! Typed, staged experiment pipeline with a content-addressed artifact
//! store.
//!
//! Every experiment in this repository is a composition of four stages:
//!
//! ```text
//! workload generation ─► dataset ─► (split) ─► M5' fit ─► rendered artifact
//! ```
//!
//! This crate turns that flow into *data*: a [`spec::DatasetSpec`],
//! [`spec::SplitSpec`], [`spec::TransferSplitSpec`], or
//! [`spec::TreeSpec`] is a complete, hashable recipe for one artifact,
//! and a [`context::PipelineContext`] resolves recipes through an
//! in-memory memo table and an on-disk [`store::ArtifactStore`] keyed
//! by [`fingerprint::Fingerprint`]s of the full input closure (schema
//! version + stage domain + every output-affecting field).
//!
//! The cache contract is **bit-identity**: a warm resolution returns a
//! `Dataset` / `ModelTree` equal to the cold recompute down to every
//! float bit. That is enforced three ways — floats are keyed and
//! serialized by IEEE-754 bit pattern ([`codec`]), every artifact
//! carries an integrity hash that turns corruption into recompute
//! ([`store`]), and the testkit's differential suite compares warm
//! against cold across the M5' configuration lattice.
//!
//! The [`spec`] module also hosts the canonical experiment registry
//! (seeds, sample counts, the headline tree configuration) that all
//! entry points — bench bins, the CLI, golden-snapshot tests — share.

#![warn(missing_docs)]

pub mod chunked;
pub mod codec;
pub mod context;
pub mod fingerprint;
pub mod output;
pub mod spec;
pub mod store;

pub use chunked::{
    decode_chunk, encode_chunk, ChunkMeta, ChunkedReader, ChunkedWriter, DecodedChunk,
};
pub use context::{PipelineContext, StageCounters, TransferSplit};
pub use fingerprint::{
    dataset_content_fingerprint, suite_def_fingerprint, Fingerprint, FingerprintHasher,
    Fingerprintable, SCHEMA_VERSION,
};
pub use spec::{
    suite_tree_config, DatasetInput, DatasetSpec, PipelineError, RngStreams, SplitPart, SplitSpec,
    SuiteKind, TransferPart, TransferSplitSpec, TreeSpec, N_SAMPLES, SEED_CPU2006, SEED_CPU2017,
    SEED_CPU2026, SEED_MATRIX, SEED_OMP2001, SEED_SPLIT,
};
pub use store::{ArtifactStore, StoreStats, CACHE_DIR_ENV};
