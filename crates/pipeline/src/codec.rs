//! Compact binary (de)serialization for cached artifacts.
//!
//! Two container formats, both carrying the schema version and a
//! trailing FNV-1a integrity hash so truncated, bit-flipped, or
//! cross-version cache files are detected on load and treated as
//! misses:
//!
//! * **`SPDS`** — a columnar [`Dataset`] image: name table, labels,
//!   then the CPI column and each event column as raw IEEE-754 bit
//!   patterns. Round-trips are bit-exact (enforced by tests and by the
//!   testkit cache-identity suite).
//! * **`SPMT`** — a [`ModelTree`] envelope: the tree's canonical JSON
//!   (the same serde representation `specrepro fit --out` writes)
//!   wrapped with version and integrity framing.
//!
//! Numbers are little-endian. The formats are cache-internal: nothing
//! outside the artifact store reads them, and a [`SCHEMA_VERSION`] bump
//! retires old files wholesale.

use crate::fingerprint::SCHEMA_VERSION;
use modeltree::ModelTree;
use perfcounters::events::N_EVENTS;
use perfcounters::{Dataset, EventId, Sample};

const DATASET_MAGIC: &[u8; 4] = b"SPDS";
const TREE_MAGIC: &[u8; 4] = b"SPMT";

/// Why a cache file failed to decode (all variants are treated as a
/// cache miss by the store; the reason feeds the stage log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// File too short for the region being read.
    Truncated,
    /// Wrong magic bytes (not an artifact of this kind).
    BadMagic,
    /// Artifact written by a different schema version.
    WrongVersion(u32),
    /// Trailing integrity hash does not match the content.
    IntegrityMismatch,
    /// Structurally invalid content (bad label, bad UTF-8, bad JSON…).
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated artifact"),
            CodecError::BadMagic => write!(f, "bad magic bytes"),
            CodecError::WrongVersion(v) => {
                write!(f, "schema version {v} (current {SCHEMA_VERSION})")
            }
            CodecError::IntegrityMismatch => write!(f, "integrity hash mismatch"),
            CodecError::Malformed(m) => write!(f, "malformed artifact: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a over a byte slice — the integrity hash appended to every
/// artifact file.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Checks magic + version framing and the trailing integrity hash,
/// returning the payload region between them.
fn open_envelope<'a>(bytes: &'a [u8], magic: &[u8; 4]) -> Result<Reader<'a>, CodecError> {
    if bytes.len() < 4 + 4 + 8 {
        return Err(CodecError::Truncated);
    }
    if &bytes[..4] != magic {
        return Err(CodecError::BadMagic);
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(CodecError::IntegrityMismatch);
    }
    let mut r = Reader { buf: body, pos: 4 };
    let version = r.u32()?;
    if version != SCHEMA_VERSION {
        return Err(CodecError::WrongVersion(version));
    }
    Ok(r)
}

fn seal(mut bytes: Vec<u8>) -> Vec<u8> {
    let hash = fnv1a(&bytes);
    bytes.extend_from_slice(&hash.to_le_bytes());
    bytes
}

/// Encodes a dataset into the columnar `SPDS` image.
pub fn encode_dataset(data: &Dataset) -> Vec<u8> {
    let n = data.len();
    let mut out = Vec::with_capacity(32 + n * (4 + 8 * (1 + N_EVENTS)));
    out.extend_from_slice(DATASET_MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(N_EVENTS as u32).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(data.benchmark_count() as u32).to_le_bytes());
    for name in data.benchmark_names() {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    for i in 0..n {
        out.extend_from_slice(&data.label(i).to_le_bytes());
    }
    let cols = data.columns();
    for &cpi in cols.cpi() {
        out.extend_from_slice(&cpi.to_bits().to_le_bytes());
    }
    for e in EventId::ALL {
        for &v in cols.event(e) {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    seal(out)
}

/// Decodes an `SPDS` image back into a bit-identical dataset.
///
/// # Errors
///
/// Any framing, integrity, or structural defect returns a
/// [`CodecError`]; the store treats all of them as a miss.
pub fn decode_dataset(bytes: &[u8]) -> Result<Dataset, CodecError> {
    let mut r = open_envelope(bytes, DATASET_MAGIC)?;
    let n_events = r.u32()? as usize;
    if n_events != N_EVENTS {
        return Err(CodecError::Malformed(format!(
            "{n_events} event columns (expected {N_EVENTS})"
        )));
    }
    let n = usize::try_from(r.u64()?).map_err(|_| CodecError::Truncated)?;
    let n_benchmarks = r.u32()? as usize;
    let mut benchmarks = Vec::with_capacity(n_benchmarks.min(1024));
    for _ in 0..n_benchmarks {
        let len = r.u32()? as usize;
        let raw = r.take(len)?;
        let name = std::str::from_utf8(raw)
            .map_err(|e| CodecError::Malformed(format!("benchmark name: {e}")))?;
        benchmarks.push(name.to_owned());
    }
    // Guard against absurd sample counts before allocating.
    let remaining = r.buf.len() - r.pos;
    let per_sample = 4 + 8 * (1 + N_EVENTS);
    if remaining != n * per_sample {
        return Err(CodecError::Malformed(format!(
            "{remaining} payload bytes for {n} samples (expected {})",
            n * per_sample
        )));
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(r.u32()?);
    }
    let mut cpi = Vec::with_capacity(n);
    for _ in 0..n {
        cpi.push(r.f64()?);
    }
    let mut columns = vec![0.0f64; N_EVENTS * n];
    for col in columns.chunks_exact_mut(n.max(1)).take(N_EVENTS) {
        for v in col.iter_mut() {
            *v = r.f64()?;
        }
    }
    let mut samples = Vec::with_capacity(n);
    let mut densities = [0.0f64; N_EVENTS];
    for i in 0..n {
        for (e, d) in densities.iter_mut().enumerate() {
            *d = columns[e * n + i];
        }
        samples.push(Sample::from_densities(cpi[i], &densities));
    }
    Dataset::from_parts(samples, labels, benchmarks)
        .map_err(|e| CodecError::Malformed(e.to_string()))
}

/// Encodes a model tree into the `SPMT` envelope (canonical serde JSON
/// plus framing).
pub fn encode_tree(tree: &ModelTree) -> Vec<u8> {
    let payload = serde_json::to_vec(tree).expect("ModelTree serializes");
    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(TREE_MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    seal(out)
}

/// Decodes an `SPMT` envelope back into a model tree.
///
/// # Errors
///
/// Any framing, integrity, or JSON defect returns a [`CodecError`].
pub fn decode_tree(bytes: &[u8]) -> Result<ModelTree, CodecError> {
    let mut r = open_envelope(bytes, TREE_MAGIC)?;
    let len = usize::try_from(r.u64()?).map_err(|_| CodecError::Truncated)?;
    let payload = r.take(len)?;
    serde_json::from_slice(payload).map_err(|e| CodecError::Malformed(format!("tree json: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modeltree::M5Config;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use workloads::generator::{GeneratorConfig, Suite};

    fn sample_dataset(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(99);
        Suite::cpu2006().generate(&mut rng, n, &GeneratorConfig::default())
    }

    fn assert_bit_identical(a: &Dataset, b: &Dataset) {
        assert_eq!(a.benchmark_names(), b.benchmark_names());
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.label(i), b.label(i));
            assert_eq!(a.sample(i).cpi().to_bits(), b.sample(i).cpi().to_bits());
            for e in EventId::ALL {
                assert_eq!(a.sample(i).get(e).to_bits(), b.sample(i).get(e).to_bits());
            }
        }
    }

    #[test]
    fn dataset_roundtrip_bit_exact() {
        let ds = sample_dataset(300);
        let back = decode_dataset(&encode_dataset(&ds)).unwrap();
        assert_bit_identical(&ds, &back);
    }

    #[test]
    fn empty_dataset_roundtrip() {
        let ds = Dataset::new();
        let back = decode_dataset(&encode_dataset(&ds)).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.benchmark_count(), 0);
    }

    #[test]
    fn special_floats_roundtrip() {
        let mut ds = Dataset::new();
        let l = ds.add_benchmark("weird");
        let mut s = Sample::zeros(-0.0);
        s.set(EventId::Load, f64::MIN_POSITIVE);
        s.set(EventId::L2Miss, 1e-300);
        ds.push(s, l);
        let back = decode_dataset(&encode_dataset(&ds)).unwrap();
        assert_bit_identical(&ds, &back);
    }

    #[test]
    fn corruption_detected() {
        let ds = sample_dataset(50);
        let good = encode_dataset(&ds);
        // A flipped bit anywhere (header, payload, or hash) is caught.
        for pos in [0usize, 5, 40, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            assert!(decode_dataset(&bad).is_err(), "flip at {pos} undetected");
        }
    }

    #[test]
    fn truncation_detected() {
        let ds = sample_dataset(50);
        let good = encode_dataset(&ds);
        for keep in [0usize, 3, 12, good.len() / 2, good.len() - 1] {
            assert!(
                decode_dataset(&good[..keep]).is_err(),
                "truncation to {keep} undetected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version() {
        let ds = sample_dataset(10);
        let good = encode_dataset(&ds);
        assert!(matches!(
            decode_dataset(&encode_tree(&tree())),
            Err(CodecError::BadMagic)
        ));
        // Patch the version field and re-seal.
        let mut bad = good[..good.len() - 8].to_vec();
        bad[4..8].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        let bad = seal(bad);
        assert_eq!(
            decode_dataset(&bad).unwrap_err(),
            CodecError::WrongVersion(SCHEMA_VERSION + 1)
        );
    }

    fn tree() -> ModelTree {
        let ds = sample_dataset(200);
        ModelTree::fit(&ds, &M5Config::default().with_min_leaf(20)).unwrap()
    }

    #[test]
    fn tree_roundtrip_is_canonical_json() {
        let t = tree();
        let back = decode_tree(&encode_tree(&t)).unwrap();
        assert_eq!(
            serde_json::to_string(&t).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
    }

    #[test]
    fn tree_corruption_detected() {
        let good = encode_tree(&tree());
        for pos in [0usize, 6, good.len() / 2, good.len() - 2] {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            assert!(decode_tree(&bad).is_err(), "flip at {pos} undetected");
        }
        assert!(decode_tree(&good[..good.len() - 9]).is_err());
    }
}
