//! Stable fingerprints of stage input closures.
//!
//! Every pipeline stage is keyed by a [`Fingerprint`] of its *full*
//! input closure: the code-schema version, the stage domain tag, and
//! every configuration field that can change the stage's output. Two
//! invocations share a cache entry exactly when their fingerprints are
//! equal, so the hash must be
//!
//! * **stable** across processes and platforms (no `std` `Hasher`
//!   randomization, no pointer identity, fixed endianness), and
//! * **sensitive** to every output-affecting input (floats hashed by
//!   bit pattern, strings length-prefixed, enums tagged).
//!
//! The implementation is a 128-bit FNV-1a pair: two independent 64-bit
//! FNV-1a streams over the same byte sequence, the second offset by a
//! domain constant. This is not cryptographic — the store also carries
//! an integrity hash per artifact — but 128 bits make accidental
//! collisions between the few thousand artifacts a workflow produces
//! vanishingly unlikely.

use std::fmt;

/// Bump when any generator / trainer / serializer behavior change makes
/// previously cached artifacts unreproducible by the current code. The
/// version participates in every fingerprint (and in the on-disk
/// header), so a bump atomically invalidates the whole store.
pub const SCHEMA_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Arbitrary odd constant decorrelating the second FNV stream.
const STREAM2_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// A 128-bit stable content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Canonical lowercase 32-hex-digit rendering (the on-disk file
    /// stem of the artifact).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`Fingerprint::to_hex`] rendering back into a key.
    /// Accepts exactly 1–32 hex digits (case-insensitive); anything
    /// else — empty, overlong, or non-hex — returns `None`. The inverse
    /// direction the serve registry needs to look artifacts up from
    /// request-supplied keys.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental fingerprint builder with explicitly typed writes.
///
/// Field order is part of the key: callers write each field in a fixed
/// documented order, tagging variable-length data with lengths so no
/// two distinct closures can serialize to the same byte stream.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    lo: u64,
    hi: u64,
}

impl FingerprintHasher {
    /// Starts a hasher for one stage domain. The domain tag and
    /// [`SCHEMA_VERSION`] are folded in first, so equal payloads in
    /// different domains (a dataset vs. a tree) never collide and every
    /// schema bump invalidates every key.
    pub fn new(domain: &str) -> Self {
        let mut h = FingerprintHasher {
            lo: FNV_OFFSET,
            hi: FNV_OFFSET ^ STREAM2_SALT,
        };
        h.write_u32(SCHEMA_VERSION);
        h.write_str(domain);
        h
    }

    fn write_byte(&mut self, b: u8) {
        self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self.hi = (self.hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Feeds raw bytes (no length tag; prefer the typed writers).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_byte(b);
        }
    }

    /// Writes one `u32` little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Writes one `u64` little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Writes a `usize` widened to `u64` (platform-independent key).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Writes a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_byte(u8::from(v));
    }

    /// Writes an `f64` by IEEE-754 bit pattern, so `-0.0 != 0.0` and
    /// every NaN payload is distinguished — bit-identity is the cache's
    /// contract.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Writes an `Option<f64>` with a presence tag.
    pub fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.write_bool(false),
            Some(x) => {
                self.write_bool(true);
                self.write_f64(x);
            }
        }
    }

    /// Writes an `Option<&str>` with a presence tag.
    pub fn write_opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.write_bool(false),
            Some(s) => {
                self.write_bool(true);
                self.write_str(s);
            }
        }
    }

    /// Finalizes the 128-bit fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint((u128::from(self.hi) << 64) | u128::from(self.lo))
    }
}

/// A value whose full output-affecting state can be folded into a
/// [`FingerprintHasher`].
pub trait Fingerprintable {
    /// Writes every output-affecting field, in a fixed order.
    fn fingerprint_into(&self, h: &mut FingerprintHasher);
}

impl Fingerprintable for workloads::generator::GeneratorConfig {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        // CounterConfig.
        h.write_u64(self.counters.interval_instructions);
        h.write_usize(self.counters.programmable_counters);
        h.write_bool(self.counters.multiplexing_noise);
        // CostModel.
        h.write_f64(self.cost.noise_sigma);
        h.write_f64(self.cost.contention);
    }
}

impl Fingerprintable for modeltree::M5Config {
    /// Every field except `n_threads`: training is bit-identical for
    /// any thread count (enforced by the testkit differential suite),
    /// so thread count is an execution hint, not part of the closure.
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_usize(self.min_leaf);
        h.write_usize(self.min_split);
        h.write_f64(self.sd_fraction);
        h.write_usize(self.max_depth);
        h.write_bool(self.prune);
        h.write_f64(self.pruning_multiplier);
        h.write_bool(self.attribute_elimination);
        h.write_bool(self.smoothing);
        h.write_f64(self.smoothing_k);
    }
}

/// Content fingerprint of a suite definition: identifier, generation,
/// environment, and the complete phase-mixture parameterization of
/// every benchmark model (each event's density spec, in
/// [`EventId::ALL`](perfcounters::EventId::ALL) order). This is how
/// registry suites without a frozen legacy token are identified in
/// dataset cache keys — any change to a suite's content re-keys its
/// artifacts, and the key is independent of where the suite sits in a
/// registry (content only, no insertion order).
pub fn suite_def_fingerprint(def: &workloads::SuiteDef) -> Fingerprint {
    use workloads::phases::EventSpec;
    let mut h = FingerprintHasher::new("suite-def");
    h.write_str(def.tag);
    h.write_str(def.display_name);
    h.write_u32(u32::from(def.generation));
    h.write_str(match def.environment {
        workloads::Environment::SingleThreaded => "single-threaded",
        workloads::Environment::MultiThreaded => "multi-threaded",
    });
    let benchmarks = (def.benchmarks)();
    h.write_usize(benchmarks.len());
    for b in &benchmarks {
        h.write_str(b.name());
        h.write_f64(b.weight());
        h.write_usize(b.phases().len());
        for p in b.phases() {
            h.write_str(p.name());
            h.write_f64(p.weight());
            for e in perfcounters::EventId::ALL {
                match p.spec(e) {
                    EventSpec::Independent(d) => {
                        h.write_bool(false);
                        h.write_f64(d.mean);
                        h.write_f64(d.cv);
                    }
                    EventSpec::Linked { source, ratio, cv } => {
                        h.write_bool(true);
                        h.write_usize(source.index());
                        h.write_f64(ratio);
                        h.write_f64(cv);
                    }
                }
            }
        }
    }
    h.finish()
}

/// Content fingerprint of a dataset's full observable state (samples,
/// labels, name table), bit-exact over every float. Used to key stages
/// whose input is an externally supplied dataset (e.g. `specrepro fit
/// --data file.csv`) rather than a generated one.
pub fn dataset_content_fingerprint(data: &perfcounters::Dataset) -> Fingerprint {
    let mut h = FingerprintHasher::new("dataset-content");
    h.write_usize(data.benchmark_count());
    for name in data.benchmark_names() {
        h.write_str(name);
    }
    h.write_usize(data.len());
    let cols = data.columns();
    for &cpi in cols.cpi() {
        h.write_f64(cpi);
    }
    for e in perfcounters::EventId::ALL {
        for &v in cols.event(e) {
            h.write_f64(v);
        }
    }
    for i in 0..data.len() {
        h.write_u32(data.label(i));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use modeltree::M5Config;
    use workloads::generator::GeneratorConfig;

    fn fp<T: Fingerprintable>(domain: &str, v: &T) -> Fingerprint {
        let mut h = FingerprintHasher::new(domain);
        v.fingerprint_into(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_calls() {
        let c = M5Config::default();
        assert_eq!(fp("t", &c), fp("t", &c));
    }

    #[test]
    fn domain_separates() {
        let c = M5Config::default();
        assert_ne!(fp("tree", &c), fp("dataset", &c));
    }

    #[test]
    fn every_m5_field_changes_key() {
        let base = M5Config::default();
        let variants = [
            base.with_min_leaf(5),
            M5Config {
                min_split: 10,
                ..base
            },
            base.with_sd_fraction(0.06),
            base.with_max_depth(7),
            base.with_prune(false),
            base.with_pruning_multiplier(1.5),
            base.with_attribute_elimination(false),
            base.with_smoothing(false),
            M5Config {
                smoothing_k: 16.0,
                ..base
            },
        ];
        let k0 = fp("t", &base);
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(k0, fp("t", v), "variant {i} did not change the key");
        }
    }

    #[test]
    fn n_threads_is_not_part_of_the_key() {
        let a = M5Config::default().with_n_threads(1);
        let b = M5Config::default().with_n_threads(8);
        assert_eq!(fp("t", &a), fp("t", &b));
    }

    #[test]
    fn generator_config_fields_change_key() {
        let base = GeneratorConfig::default();
        let mut noise = base;
        noise.cost.noise_sigma = 0.05;
        let mut cont = base;
        cont.cost.contention = 1.5;
        let mut mux = base;
        mux.counters.multiplexing_noise = false;
        let k0 = fp("d", &base);
        for v in [&noise, &cont, &mux] {
            assert_ne!(k0, fp("d", v));
        }
    }

    #[test]
    fn float_bit_sensitivity() {
        let mut a = FingerprintHasher::new("x");
        a.write_f64(0.0);
        let mut b = FingerprintHasher::new("x");
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_rendering() {
        let k = FingerprintHasher::new("x").finish();
        let hex = k.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex, format!("{k}"));
    }

    #[test]
    fn dataset_content_fingerprint_sensitive() {
        use perfcounters::{Dataset, EventId, Sample};
        let mut a = Dataset::new();
        let l = a.add_benchmark("x");
        a.push(Sample::zeros(1.0), l);
        let mut b = a.clone();
        let mut s = Sample::zeros(1.0);
        s.set(EventId::Load, 1e-9);
        b.push(s, l);
        assert_ne!(
            dataset_content_fingerprint(&a),
            dataset_content_fingerprint(&b)
        );
        assert_eq!(
            dataset_content_fingerprint(&a),
            dataset_content_fingerprint(&a.clone())
        );
    }

    #[test]
    fn hex_round_trip() {
        for fp in [
            Fingerprint(0),
            Fingerprint(1),
            Fingerprint(u128::MAX),
            Fingerprint(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210),
        ] {
            assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        }
        assert_eq!(Fingerprint::from_hex("ABCDEF"), Some(Fingerprint(0xabcdef)));
        assert_eq!(Fingerprint::from_hex(""), None);
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(&"f".repeat(33)), None);
        assert_eq!(Fingerprint::from_hex("0x12"), None);
    }
}
