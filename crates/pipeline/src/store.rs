//! Content-addressed on-disk artifact store.
//!
//! Artifacts live under one root directory, namespaced by schema
//! version and kind:
//!
//! ```text
//! <root>/v<SCHEMA_VERSION>/datasets/<fingerprint>.spds
//! <root>/v<SCHEMA_VERSION>/trees/<fingerprint>.spmt
//! ```
//!
//! The root comes from `SPECREPRO_CACHE_DIR` when set, else
//! `<system temp>/specrepro-cache` — stable across working directories
//! so every entry point (bench bins, the CLI, testkit) shares one
//! store. Writes are atomic (temp file + rename), so concurrent
//! processes never observe torn artifacts; loads verify the codec's
//! integrity hash and evict any file that fails, turning corruption
//! into a recompute instead of an error.

use crate::codec::{self, CodecError};
use crate::fingerprint::{Fingerprint, SCHEMA_VERSION};
use modeltree::ModelTree;
use perfcounters::Dataset;
use std::path::{Path, PathBuf};

/// Environment variable overriding the store root.
pub const CACHE_DIR_ENV: &str = "SPECREPRO_CACHE_DIR";

/// The artifact kinds the store distinguishes (separate directories
/// and file extensions; the fingerprint domain already separates keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Columnar binary datasets (`.spds`).
    Dataset,
    /// Model-tree envelopes (`.spmt`).
    Tree,
}

impl ArtifactKind {
    fn dir(self) -> &'static str {
        match self {
            ArtifactKind::Dataset => "datasets",
            ArtifactKind::Tree => "trees",
        }
    }

    fn extension(self) -> &'static str {
        match self {
            ArtifactKind::Dataset => "spds",
            ArtifactKind::Tree => "spmt",
        }
    }
}

/// Aggregate statistics over the store (for `specrepro cache stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of dataset artifacts.
    pub datasets: usize,
    /// Total bytes of dataset artifacts.
    pub dataset_bytes: u64,
    /// Number of tree artifacts.
    pub trees: usize,
    /// Total bytes of tree artifacts.
    pub tree_bytes: u64,
}

impl StoreStats {
    /// Total artifact count.
    pub fn files(&self) -> usize {
        self.datasets + self.trees
    }

    /// Total bytes across all artifacts.
    pub fn bytes(&self) -> u64 {
        self.dataset_bytes + self.tree_bytes
    }
}

/// A content-addressed artifact store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (lazily — nothing is created until the first write) a
    /// store at an explicit root.
    pub fn open(root: impl Into<PathBuf>) -> Self {
        ArtifactStore { root: root.into() }
    }

    /// Opens the environment-selected store: `SPECREPRO_CACHE_DIR` when
    /// set and non-empty, else `<system temp>/specrepro-cache`.
    pub fn from_env() -> Self {
        ArtifactStore::open(default_root())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, kind: ArtifactKind, key: Fingerprint) -> PathBuf {
        self.root
            .join(format!("v{SCHEMA_VERSION}"))
            .join(kind.dir())
            .join(format!("{}.{}", key.to_hex(), kind.extension()))
    }

    /// Writes `bytes` under `key`, atomically (temp file + rename).
    /// Best-effort: an unwritable cache degrades to recompute-always,
    /// so I/O failures surface as `Err` for logging but are safe to
    /// ignore.
    fn put(&self, kind: ArtifactKind, key: Fingerprint, bytes: &[u8]) -> std::io::Result<()> {
        let path = self.path_for(kind, key);
        let dir = path.parent().expect("artifact path has a parent");
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(".{}.tmp.{}", key.to_hex(), std::process::id()));
        std::fs::write(&tmp, bytes)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => {
                obskit::metrics::add(
                    obskit::metrics::Metric::PipelineBytesWritten,
                    bytes.len() as u64,
                );
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Reads the raw bytes under `key`, or `None` when absent.
    fn get(&self, kind: ArtifactKind, key: Fingerprint) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.path_for(kind, key)).ok()?;
        obskit::metrics::add(
            obskit::metrics::Metric::PipelineBytesRead,
            bytes.len() as u64,
        );
        Some(bytes)
    }

    /// Removes the artifact under `key` (used to evict corrupt files).
    fn evict(&self, kind: ArtifactKind, key: Fingerprint) {
        let _ = std::fs::remove_file(self.path_for(kind, key));
    }

    /// Stores a dataset under `key`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (safe to ignore; the store is a cache).
    pub fn store_dataset(&self, key: Fingerprint, data: &Dataset) -> std::io::Result<()> {
        let bytes = obskit::metrics::time(obskit::metrics::Hist::PipelineCodecEncodeNs, || {
            codec::encode_dataset(data)
        });
        self.put(ArtifactKind::Dataset, key, &bytes)
    }

    /// Loads the dataset under `key`. Corrupt or cross-version files
    /// are evicted and reported as `Err(Some(reason))`; a plain miss is
    /// `Err(None)`.
    #[allow(clippy::result_large_err)]
    pub fn load_dataset(&self, key: Fingerprint) -> Result<Dataset, Option<CodecError>> {
        let bytes = self.get(ArtifactKind::Dataset, key).ok_or(None)?;
        obskit::metrics::time(obskit::metrics::Hist::PipelineCodecDecodeNs, || {
            codec::decode_dataset(&bytes)
        })
        .map_err(|e| {
            self.evict(ArtifactKind::Dataset, key);
            Some(e)
        })
    }

    /// Stores a model tree under `key`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (safe to ignore; the store is a cache).
    pub fn store_tree(&self, key: Fingerprint, tree: &ModelTree) -> std::io::Result<()> {
        let bytes = obskit::metrics::time(obskit::metrics::Hist::PipelineCodecEncodeNs, || {
            codec::encode_tree(tree)
        });
        self.put(ArtifactKind::Tree, key, &bytes)
    }

    /// Loads the model tree under `key`. Corrupt or cross-version files
    /// are evicted and reported as `Err(Some(reason))`; a plain miss is
    /// `Err(None)`.
    #[allow(clippy::result_large_err)]
    pub fn load_tree(&self, key: Fingerprint) -> Result<ModelTree, Option<CodecError>> {
        let bytes = self.get(ArtifactKind::Tree, key).ok_or(None)?;
        obskit::metrics::time(obskit::metrics::Hist::PipelineCodecDecodeNs, || {
            codec::decode_tree(&bytes)
        })
        .map_err(|e| {
            self.evict(ArtifactKind::Tree, key);
            Some(e)
        })
    }

    /// Counts artifacts and bytes across every schema-version
    /// subdirectory of the root.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        let Ok(versions) = std::fs::read_dir(&self.root) else {
            return stats;
        };
        for version in versions.flatten() {
            for kind in [ArtifactKind::Dataset, ArtifactKind::Tree] {
                let Ok(entries) = std::fs::read_dir(version.path().join(kind.dir())) else {
                    continue;
                };
                for entry in entries.flatten() {
                    let Ok(meta) = entry.metadata() else { continue };
                    if !meta.is_file() {
                        continue;
                    }
                    match kind {
                        ArtifactKind::Dataset => {
                            stats.datasets += 1;
                            stats.dataset_bytes += meta.len();
                        }
                        ArtifactKind::Tree => {
                            stats.trees += 1;
                            stats.tree_bytes += meta.len();
                        }
                    }
                }
            }
        }
        stats
    }

    /// Deletes the entire store root.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the root not existing.
    pub fn clear(&self) -> std::io::Result<()> {
        match std::fs::remove_dir_all(&self.root) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// The environment-selected store root (see [`ArtifactStore::from_env`]).
pub fn default_root() -> PathBuf {
    match std::env::var(CACHE_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => std::env::temp_dir().join("specrepro-cache"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintHasher;
    use perfcounters::Sample;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("specrepro-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir)
    }

    fn key(tag: &str) -> Fingerprint {
        FingerprintHasher::new(tag).finish()
    }

    fn tiny_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let l = ds.add_benchmark("bench");
        for i in 0..8 {
            ds.push(Sample::zeros(1.0 + i as f64), l);
        }
        ds
    }

    #[test]
    fn store_and_load_dataset() {
        let store = temp_store("ds");
        let ds = tiny_dataset();
        let k = key("a");
        assert!(store.load_dataset(k).is_err());
        store.store_dataset(k, &ds).unwrap();
        let back = store.load_dataset(k).unwrap();
        assert_eq!(back, ds);
        // A different key is a miss, not a collision.
        assert!(matches!(store.load_dataset(key("b")), Err(None)));
        store.clear().unwrap();
        assert!(store.load_dataset(k).is_err());
    }

    #[test]
    fn corrupt_artifact_evicted_on_load() {
        let store = temp_store("corrupt");
        let k = key("c");
        store.store_dataset(k, &tiny_dataset()).unwrap();
        let path = store.path_for(ArtifactKind::Dataset, k);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match store.load_dataset(k) {
            Err(Some(_reason)) => {}
            other => panic!("expected corruption report, got {other:?}"),
        }
        // Evicted: the second load is a plain miss.
        assert!(matches!(store.load_dataset(k), Err(None)));
        assert!(!path.exists());
        store.clear().unwrap();
    }

    #[test]
    fn truncated_artifact_is_a_miss() {
        let store = temp_store("trunc");
        let k = key("t");
        store.store_dataset(k, &tiny_dataset()).unwrap();
        let path = store.path_for(ArtifactKind::Dataset, k);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(store.load_dataset(k), Err(Some(_))));
        store.clear().unwrap();
    }

    #[test]
    fn stats_count_files_and_bytes() {
        let store = temp_store("stats");
        assert_eq!(store.stats(), StoreStats::default());
        store.store_dataset(key("x"), &tiny_dataset()).unwrap();
        store.store_dataset(key("y"), &tiny_dataset()).unwrap();
        let stats = store.stats();
        assert_eq!(stats.datasets, 2);
        assert_eq!(stats.trees, 0);
        assert!(stats.bytes() > 0);
        assert_eq!(stats.files(), 2);
        store.clear().unwrap();
        assert_eq!(store.stats(), StoreStats::default());
    }

    #[test]
    fn clear_missing_root_is_ok() {
        let store = temp_store("missing");
        store.clear().unwrap();
        store.clear().unwrap();
    }
}
