//! Chunked columnar dataset containers (`SPDC`) for out-of-core work.
//!
//! The flat `SPDS` image ([`crate::codec`]) materializes a whole
//! dataset in one buffer — fine for cache artifacts, unusable for
//! fleet-scale streams that exceed RAM. The `SPDC` container splits
//! the same columnar layout into independently decodable, individually
//! hashed chunks behind a directory, so readers can address any row
//! range through `Read`/`Seek` without touching the rest of the file:
//!
//! ```text
//! header     "SPDC" | schema version | n_events | benchmark names | hash
//! bodies     chunk 0 | chunk 1 | ...          (each ends in its own hash)
//! directory  n_chunks | (offset, len, rows, hash)* | hash
//! footer     dir_offset | total_rows | "CDPS" | schema version
//! ```
//!
//! Each chunk body is a self-contained columnar block (`rows`, labels,
//! CPI bits, event columns, FNV-1a hash). The directory duplicates each
//! body's hash so a reader can verify a chunk without trusting the body
//! bytes, and the fixed-size footer lets `open` find the directory with
//! two seeks. Every region — header, each body, directory — carries its
//! own integrity hash: a bit flip or truncation anywhere is a typed
//! [`CodecError`], never a silent bad read.
//!
//! Writers append chunks as they are sealed (constant memory), then
//! write the directory last. [`ChunkedWriter::append_chunk`] verifies
//! every body by reading it back, so a short write (injected by the
//! fault harness, or a real torn write) is detected and rewritten in
//! place before the directory ever references it.

use crate::codec::CodecError;
use crate::fingerprint::{Fingerprint, FingerprintHasher, SCHEMA_VERSION};
use modeltree::CompiledTree;
use perfcounters::events::N_EVENTS;
use perfcounters::{Dataset, Sample};
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;

const CHUNKED_MAGIC: &[u8; 4] = b"SPDC";
const FOOTER_MAGIC: &[u8; 4] = b"CDPS";
/// `dir_offset u64 | total_rows u64 | magic | version u32`.
const FOOTER_LEN: u64 = 8 + 8 + 4 + 4;
/// Bytes one row occupies inside a chunk body (label + CPI + events).
const ROW_BYTES: usize = 4 + 8 + 8 * N_EVENTS;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(e: std::io::Error) -> CodecError {
    CodecError::Malformed(format!("container io: {e}"))
}

/// Directory entry for one sealed chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Absolute byte offset of the chunk body in the container.
    pub offset: u64,
    /// Body length in bytes (including the trailing hash).
    pub len: u64,
    /// Rows in the chunk.
    pub rows: u64,
    /// The body's trailing FNV-1a hash, duplicated for verification.
    pub hash: u64,
}

/// One decoded chunk: a columnar block of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedChunk {
    /// Benchmark label per row.
    pub labels: Vec<u32>,
    /// CPI column.
    pub cpi: Vec<f64>,
    /// Event columns, concatenated event-major: event `e` occupies
    /// `e * rows .. (e + 1) * rows`.
    pub events: Vec<f64>,
}

impl DecodedChunk {
    /// Rows in the chunk.
    pub fn rows(&self) -> usize {
        self.labels.len()
    }

    /// Appends rows `range` of this chunk as samples.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the chunk's rows.
    pub fn append_rows(
        &self,
        range: Range<usize>,
        samples: &mut Vec<Sample>,
        labels: &mut Vec<u32>,
    ) {
        let n = self.rows();
        assert!(range.end <= n, "row range {range:?} outside chunk of {n}");
        let mut densities = [0.0f64; N_EVENTS];
        for i in range {
            for (e, d) in densities.iter_mut().enumerate() {
                *d = self.events[e * n + i];
            }
            samples.push(Sample::from_densities(self.cpi[i], &densities));
            labels.push(self.labels[i]);
        }
    }

    /// Materializes the chunk as a standalone [`Dataset`] sharing the
    /// container's benchmark name table.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] when a label points outside
    /// the name table.
    pub fn to_dataset(&self, benchmarks: &[String]) -> Result<Dataset, CodecError> {
        let mut samples = Vec::with_capacity(self.rows());
        let mut labels = Vec::with_capacity(self.rows());
        self.append_rows(0..self.rows(), &mut samples, &mut labels);
        Dataset::from_parts(samples, labels, benchmarks.to_vec())
            .map_err(|e| CodecError::Malformed(e.to_string()))
    }
}

/// Encodes one columnar chunk body (labels, CPI, event columns) with a
/// trailing integrity hash.
///
/// # Panics
///
/// Panics if the column lengths disagree (`events` must hold
/// `N_EVENTS * labels.len()` values, event-major).
pub fn encode_chunk(labels: &[u32], cpi: &[f64], events: &[f64]) -> Vec<u8> {
    let rows = labels.len();
    assert_eq!(cpi.len(), rows, "cpi column length");
    assert_eq!(events.len(), N_EVENTS * rows, "event column length");
    let mut out = Vec::with_capacity(4 + rows * ROW_BYTES + 8);
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    for &l in labels {
        out.extend_from_slice(&l.to_le_bytes());
    }
    for &v in cpi {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for &v in events {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let hash = fnv1a(&out);
    out.extend_from_slice(&hash.to_le_bytes());
    out
}

/// Decodes and verifies one chunk body.
///
/// # Errors
///
/// Returns a typed [`CodecError`] on truncation, length mismatch, or
/// integrity-hash mismatch.
pub fn decode_chunk(bytes: &[u8]) -> Result<DecodedChunk, CodecError> {
    if bytes.len() < 4 + 8 {
        return Err(CodecError::Truncated);
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(CodecError::IntegrityMismatch);
    }
    let rows = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
    if body.len() != 4 + rows * ROW_BYTES {
        return Err(CodecError::Malformed(format!(
            "{} body bytes for {rows} rows (expected {})",
            body.len(),
            4 + rows * ROW_BYTES
        )));
    }
    let mut pos = 4;
    let mut labels = Vec::with_capacity(rows);
    for _ in 0..rows {
        labels.push(u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()));
        pos += 4;
    }
    let read_f64 = |pos: &mut usize| {
        let v = f64::from_bits(u64::from_le_bytes(body[*pos..*pos + 8].try_into().unwrap()));
        *pos += 8;
        v
    };
    let mut cpi = Vec::with_capacity(rows);
    for _ in 0..rows {
        cpi.push(read_f64(&mut pos));
    }
    let mut events = Vec::with_capacity(N_EVENTS * rows);
    for _ in 0..N_EVENTS * rows {
        events.push(read_f64(&mut pos));
    }
    Ok(DecodedChunk {
        labels,
        cpi,
        events,
    })
}

fn encode_header(benchmarks: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CHUNKED_MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(N_EVENTS as u32).to_le_bytes());
    out.extend_from_slice(&(benchmarks.len() as u32).to_le_bytes());
    for name in benchmarks {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    let hash = fnv1a(&out);
    out.extend_from_slice(&hash.to_le_bytes());
    out
}

/// Incremental `SPDC` writer: header up front, chunk bodies as they
/// seal, directory and footer on [`ChunkedWriter::finish`].
///
/// The underlying stream must support reads and seeks because every
/// appended body is read back and verified before the directory is
/// allowed to reference it (see [`ChunkedWriter::append_chunk`]).
#[derive(Debug)]
pub struct ChunkedWriter<W: Read + Write + Seek> {
    dst: W,
    chunks: Vec<ChunkMeta>,
    cursor: u64,
    total_rows: u64,
    recoveries: u64,
}

impl<W: Read + Write + Seek> ChunkedWriter<W> {
    /// Starts a container: writes the header for the given benchmark
    /// name table.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn new(mut dst: W, benchmarks: &[String]) -> std::io::Result<Self> {
        let header = encode_header(benchmarks);
        dst.seek(SeekFrom::Start(0))?;
        dst.write_all(&header)?;
        Ok(ChunkedWriter {
            dst,
            chunks: Vec::new(),
            cursor: header.len() as u64,
            total_rows: 0,
            recoveries: 0,
        })
    }

    /// Appends one encoded chunk body (from [`encode_chunk`]), then
    /// reads it back and verifies the trailing hash. A torn or
    /// truncated write — real, or injected by the fault harness via
    /// `truncate_to` — is detected here and the body is rewritten in
    /// place, so the directory never references corrupt bytes.
    ///
    /// `truncate_to` caps the first write attempt at that many bytes
    /// (fault injection); `None` writes normally.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; fails if the body still verifies wrong
    /// after one rewrite (a genuinely broken device).
    pub fn append_chunk(
        &mut self,
        body: &[u8],
        truncate_to: Option<usize>,
    ) -> std::io::Result<ChunkMeta> {
        let offset = self.cursor;
        let first = truncate_to.map_or(body, |n| &body[..n.min(body.len())]);
        self.dst.seek(SeekFrom::Start(offset))?;
        self.dst.write_all(first)?;
        self.dst.flush()?;
        if !self.verify_region(offset, body)? {
            obskit::metrics::incr(obskit::metrics::Metric::StreamChunkRecoveries);
            self.recoveries += 1;
            self.dst.seek(SeekFrom::Start(offset))?;
            self.dst.write_all(body)?;
            self.dst.flush()?;
            if !self.verify_region(offset, body)? {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "chunk body failed read-back verification after rewrite",
                ));
            }
        }
        let rows = decode_chunk(body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
            .rows() as u64;
        let meta = ChunkMeta {
            offset,
            len: body.len() as u64,
            rows,
            hash: u64::from_le_bytes(body[body.len() - 8..].try_into().unwrap()),
        };
        self.cursor = offset + body.len() as u64;
        self.total_rows += rows;
        self.chunks.push(meta);
        Ok(meta)
    }

    /// Reads `expected.len()` bytes at `offset` and compares them to
    /// `expected`. Short reads count as mismatch, not error.
    fn verify_region(&mut self, offset: u64, expected: &[u8]) -> std::io::Result<bool> {
        self.dst.seek(SeekFrom::Start(offset))?;
        let mut got = vec![0u8; expected.len()];
        let mut filled = 0;
        while filled < got.len() {
            match self.dst.read(&mut got[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(filled == expected.len() && got == expected)
    }

    /// Number of torn writes detected and repaired so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Writes the directory and footer, consuming the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn finish(mut self) -> std::io::Result<(u64, Vec<ChunkMeta>)> {
        let dir_offset = self.cursor;
        let mut dir = Vec::with_capacity(8 + self.chunks.len() * 32 + 8);
        dir.extend_from_slice(&(self.chunks.len() as u64).to_le_bytes());
        for c in &self.chunks {
            dir.extend_from_slice(&c.offset.to_le_bytes());
            dir.extend_from_slice(&c.len.to_le_bytes());
            dir.extend_from_slice(&c.rows.to_le_bytes());
            dir.extend_from_slice(&c.hash.to_le_bytes());
        }
        let hash = fnv1a(&dir);
        dir.extend_from_slice(&hash.to_le_bytes());
        self.dst.seek(SeekFrom::Start(dir_offset))?;
        self.dst.write_all(&dir)?;
        self.dst.write_all(&dir_offset.to_le_bytes())?;
        self.dst.write_all(&self.total_rows.to_le_bytes())?;
        self.dst.write_all(FOOTER_MAGIC)?;
        self.dst.write_all(&SCHEMA_VERSION.to_le_bytes())?;
        self.dst.flush()?;
        Ok((self.total_rows, self.chunks))
    }
}

/// An open `SPDC` container: the parsed directory plus a seekable
/// source, addressing any chunk or row range without materializing the
/// rest — the [`Dataset`] out-of-core view.
#[derive(Debug)]
pub struct ChunkedReader<R: Read + Seek> {
    src: R,
    benchmarks: Vec<String>,
    chunks: Vec<ChunkMeta>,
    /// Global row index at which each chunk starts (prefix sums), plus
    /// one trailing entry equal to the total row count.
    row_starts: Vec<u64>,
}

impl<R: Read + Seek> ChunkedReader<R> {
    /// Opens a container: validates footer, directory, and header
    /// framing (schema version, integrity hashes, offset sanity).
    ///
    /// # Errors
    ///
    /// Returns a typed [`CodecError`] for any framing defect — stale
    /// schema version, truncated directory, hash mismatch.
    pub fn open(mut src: R) -> Result<Self, CodecError> {
        let file_len = src.seek(SeekFrom::End(0)).map_err(io_err)?;
        if file_len < FOOTER_LEN {
            return Err(CodecError::Truncated);
        }
        src.seek(SeekFrom::Start(file_len - FOOTER_LEN))
            .map_err(io_err)?;
        let mut footer = [0u8; FOOTER_LEN as usize];
        src.read_exact(&mut footer).map_err(io_err)?;
        if &footer[16..20] != FOOTER_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u32::from_le_bytes(footer[20..24].try_into().unwrap());
        if version != SCHEMA_VERSION {
            return Err(CodecError::WrongVersion(version));
        }
        let dir_offset = u64::from_le_bytes(footer[..8].try_into().unwrap());
        let total_rows = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        if dir_offset > file_len - FOOTER_LEN {
            return Err(CodecError::Truncated);
        }
        // Directory: everything between dir_offset and the footer.
        let dir_len = (file_len - FOOTER_LEN - dir_offset) as usize;
        src.seek(SeekFrom::Start(dir_offset)).map_err(io_err)?;
        let mut dir = vec![0u8; dir_len];
        src.read_exact(&mut dir).map_err(io_err)?;
        if dir_len < 8 + 8 {
            return Err(CodecError::Truncated);
        }
        let body = &dir[..dir_len - 8];
        let stored = u64::from_le_bytes(dir[dir_len - 8..].try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(CodecError::IntegrityMismatch);
        }
        let n_chunks = u64::from_le_bytes(body[..8].try_into().unwrap()) as usize;
        if body.len() != 8 + n_chunks * 32 {
            return Err(CodecError::Malformed(format!(
                "directory holds {} bytes for {n_chunks} chunks",
                body.len()
            )));
        }
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut row_starts = Vec::with_capacity(n_chunks + 1);
        let mut rows_so_far = 0u64;
        for i in 0..n_chunks {
            let e = &body[8 + i * 32..8 + (i + 1) * 32];
            let meta = ChunkMeta {
                offset: u64::from_le_bytes(e[..8].try_into().unwrap()),
                len: u64::from_le_bytes(e[8..16].try_into().unwrap()),
                rows: u64::from_le_bytes(e[16..24].try_into().unwrap()),
                hash: u64::from_le_bytes(e[24..32].try_into().unwrap()),
            };
            if meta.offset.saturating_add(meta.len) > dir_offset {
                return Err(CodecError::Malformed(format!(
                    "chunk {i} region [{}, {}) overlaps the directory",
                    meta.offset,
                    meta.offset + meta.len
                )));
            }
            row_starts.push(rows_so_far);
            rows_so_far += meta.rows;
            chunks.push(meta);
        }
        row_starts.push(rows_so_far);
        if rows_so_far != total_rows {
            return Err(CodecError::Malformed(format!(
                "directory rows {rows_so_far} != footer rows {total_rows}"
            )));
        }
        // Header.
        src.seek(SeekFrom::Start(0)).map_err(io_err)?;
        let mut magic = [0u8; 4];
        src.read_exact(&mut magic).map_err(io_err)?;
        if &magic != CHUNKED_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let mut u32buf = [0u8; 4];
        let mut read_u32 = |src: &mut R| -> Result<u32, CodecError> {
            src.read_exact(&mut u32buf).map_err(io_err)?;
            Ok(u32::from_le_bytes(u32buf))
        };
        let version = read_u32(&mut src)?;
        if version != SCHEMA_VERSION {
            return Err(CodecError::WrongVersion(version));
        }
        let n_events = read_u32(&mut src)? as usize;
        if n_events != N_EVENTS {
            return Err(CodecError::Malformed(format!(
                "{n_events} event columns (expected {N_EVENTS})"
            )));
        }
        let n_benchmarks = read_u32(&mut src)? as usize;
        let mut header = encode_header(&[]);
        header.truncate(16); // magic + version + n_events + n_benchmarks
        header[12..16].copy_from_slice(&(n_benchmarks as u32).to_le_bytes());
        let mut benchmarks = Vec::with_capacity(n_benchmarks.min(1024));
        for _ in 0..n_benchmarks {
            let len = read_u32(&mut src)? as usize;
            if len > dir_offset as usize {
                return Err(CodecError::Truncated);
            }
            let mut raw = vec![0u8; len];
            src.read_exact(&mut raw).map_err(io_err)?;
            header.extend_from_slice(&(len as u32).to_le_bytes());
            header.extend_from_slice(&raw);
            let name = String::from_utf8(raw)
                .map_err(|e| CodecError::Malformed(format!("benchmark name: {e}")))?;
            benchmarks.push(name);
        }
        let mut stored = [0u8; 8];
        src.read_exact(&mut stored).map_err(io_err)?;
        if fnv1a(&header) != u64::from_le_bytes(stored) {
            return Err(CodecError::IntegrityMismatch);
        }
        Ok(ChunkedReader {
            src,
            benchmarks,
            chunks,
            row_starts,
        })
    }

    /// Total rows across all chunks.
    pub fn n_rows(&self) -> u64 {
        *self.row_starts.last().unwrap_or(&0)
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Directory entry of one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn meta(&self, i: usize) -> ChunkMeta {
        self.chunks[i]
    }

    /// Global row index at which chunk `i` starts.
    ///
    /// # Panics
    ///
    /// Panics if `i > n_chunks()`.
    pub fn row_start(&self, i: usize) -> u64 {
        self.row_starts[i]
    }

    /// The container's benchmark name table.
    pub fn benchmarks(&self) -> &[String] {
        &self.benchmarks
    }

    /// Reads and verifies one chunk.
    ///
    /// # Errors
    ///
    /// [`CodecError::IntegrityMismatch`] when the body hash disagrees
    /// with the body or the directory; other variants for framing
    /// defects.
    pub fn read_chunk(&mut self, i: usize) -> Result<DecodedChunk, CodecError> {
        let meta = *self
            .chunks
            .get(i)
            .ok_or_else(|| CodecError::Malformed(format!("chunk {i} out of range")))?;
        let bytes = self.read_chunk_bytes(meta)?;
        if u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap()) != meta.hash {
            return Err(CodecError::IntegrityMismatch);
        }
        let chunk = decode_chunk(&bytes)?;
        if chunk.rows() as u64 != meta.rows {
            return Err(CodecError::Malformed(format!(
                "chunk {i} decodes {} rows, directory says {}",
                chunk.rows(),
                meta.rows
            )));
        }
        Ok(chunk)
    }

    fn read_chunk_bytes(&mut self, meta: ChunkMeta) -> Result<Vec<u8>, CodecError> {
        if meta.len < 12 {
            return Err(CodecError::Truncated);
        }
        self.src
            .seek(SeekFrom::Start(meta.offset))
            .map_err(io_err)?;
        let mut bytes = vec![0u8; meta.len as usize];
        self.src.read_exact(&mut bytes).map_err(io_err)?;
        obskit::metrics::add(obskit::metrics::Metric::PipelineBytesRead, meta.len);
        Ok(bytes)
    }

    /// Materializes one chunk as a [`Dataset`] carrying the container's
    /// name table.
    ///
    /// # Errors
    ///
    /// Propagates [`ChunkedReader::read_chunk`] errors plus label
    /// range defects.
    pub fn chunk_dataset(&mut self, i: usize) -> Result<Dataset, CodecError> {
        let benchmarks = self.benchmarks.clone();
        self.read_chunk(i)?.to_dataset(&benchmarks)
    }

    /// The chunk indices whose rows intersect the global row range.
    pub fn chunks_covering(&self, rows: &Range<u64>) -> Range<usize> {
        if rows.start >= rows.end {
            return 0..0;
        }
        let first = self.row_starts.partition_point(|&s| s <= rows.start) - 1;
        let last = self.row_starts.partition_point(|&s| s < rows.end) - 1;
        first..(last + 1).min(self.chunks.len())
    }

    /// Materializes global rows `[rows.start, rows.end)` as a
    /// [`Dataset`], decoding only the chunks that intersect the range —
    /// the out-of-core window view: peak memory is the window plus one
    /// chunk, independent of container size.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range windows and on any chunk defect.
    pub fn window_dataset(&mut self, rows: Range<u64>) -> Result<Dataset, CodecError> {
        if rows.end > self.n_rows() || rows.start > rows.end {
            return Err(CodecError::Malformed(format!(
                "window {rows:?} outside container of {} rows",
                self.n_rows()
            )));
        }
        let mut samples = Vec::with_capacity((rows.end - rows.start) as usize);
        let mut labels = Vec::with_capacity(samples.capacity());
        for i in self.chunks_covering(&rows) {
            let start = self.row_starts[i];
            let chunk = self.read_chunk(i)?;
            let lo = rows.start.saturating_sub(start) as usize;
            let hi = ((rows.end - start) as usize).min(chunk.rows());
            chunk.append_rows(lo..hi, &mut samples, &mut labels);
        }
        Dataset::from_parts(samples, labels, self.benchmarks.clone())
            .map_err(|e| CodecError::Malformed(e.to_string()))
    }

    /// Streams every chunk through the compiled engine's block kernels,
    /// returning predictions in container row order. Peak memory is one
    /// chunk, never the whole table.
    ///
    /// # Errors
    ///
    /// Propagates chunk read errors.
    pub fn predict_all(&mut self, tree: &CompiledTree) -> Result<Vec<f64>, CodecError> {
        let mut out = Vec::with_capacity(self.n_rows() as usize);
        for i in 0..self.n_chunks() {
            let ds = self.chunk_dataset(i)?;
            out.extend(tree.predict_batch(&ds));
        }
        Ok(out)
    }

    /// Content fingerprint of a row window: the chunk hashes covering
    /// it plus the in-chunk offsets. Two windows share a fingerprint
    /// exactly when they cover identical bytes of identical chunks —
    /// the key the windowed-refit cache uses.
    pub fn window_fingerprint(&self, rows: &Range<u64>, domain: &str) -> Fingerprint {
        let mut h = FingerprintHasher::new(domain);
        h.write_usize(self.benchmarks.len());
        for name in &self.benchmarks {
            h.write_str(name);
        }
        h.write_u64(rows.start);
        h.write_u64(rows.end);
        let covering = self.chunks_covering(rows);
        h.write_usize(covering.len());
        for i in covering {
            h.write_u64(self.chunks[i].hash);
            h.write_u64(self.chunks[i].rows);
        }
        h.finish()
    }

    /// Consumes the reader, returning the underlying source.
    pub fn into_inner(self) -> R {
        self.src
    }
}

impl<R: Read + Write + Seek> ChunkedReader<R> {
    /// Rewrites chunk `i`'s body in place — the recovery path after a
    /// corrupt chunk is detected and its content recomputed. The new
    /// body must match the directory entry exactly (same length, same
    /// hash): recomputation is deterministic, so a mismatch means the
    /// caller recomputed the wrong chunk.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] when the body disagrees with the
    /// directory entry; I/O failures as [`CodecError::Malformed`].
    pub fn rewrite_chunk(&mut self, i: usize, body: &[u8]) -> Result<(), CodecError> {
        let meta = *self
            .chunks
            .get(i)
            .ok_or_else(|| CodecError::Malformed(format!("chunk {i} out of range")))?;
        if body.len() as u64 != meta.len
            || body.len() < 12
            || u64::from_le_bytes(body[body.len() - 8..].try_into().unwrap()) != meta.hash
            || fnv1a(&body[..body.len() - 8]) != meta.hash
        {
            return Err(CodecError::Malformed(format!(
                "recomputed chunk {i} does not match its directory entry"
            )));
        }
        self.src
            .seek(SeekFrom::Start(meta.offset))
            .map_err(io_err)?;
        self.src.write_all(body).map_err(io_err)?;
        self.src.flush().map_err(io_err)?;
        obskit::metrics::incr(obskit::metrics::Metric::StreamChunkRecoveries);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcounters::EventId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::io::Cursor;
    use workloads::generator::{GeneratorConfig, Suite};

    fn sample_dataset(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(7);
        Suite::cpu2006().generate(&mut rng, n, &GeneratorConfig::default())
    }

    fn chunk_of(ds: &Dataset, rows: Range<usize>) -> Vec<u8> {
        let labels: Vec<u32> = rows.clone().map(|i| ds.label(i)).collect();
        let cpi: Vec<f64> = rows.clone().map(|i| ds.sample(i).cpi()).collect();
        let n = rows.len();
        let mut events = vec![0.0; N_EVENTS * n];
        for (k, i) in rows.enumerate() {
            for e in EventId::ALL {
                events[e.index() * n + k] = ds.sample(i).get(e);
            }
        }
        encode_chunk(&labels, &cpi, &events)
    }

    fn container_bytes(ds: &Dataset, chunk_rows: usize) -> Vec<u8> {
        let mut cursor = Cursor::new(Vec::new());
        {
            let mut w = ChunkedWriter::new(&mut cursor, ds.benchmark_names()).unwrap();
            let mut at = 0;
            while at < ds.len() {
                let end = (at + chunk_rows).min(ds.len());
                w.append_chunk(&chunk_of(ds, at..end), None).unwrap();
                at = end;
            }
            w.finish().unwrap();
        }
        cursor.into_inner()
    }

    #[test]
    fn roundtrip_windows_bit_exact() {
        let ds = sample_dataset(257);
        for chunk_rows in [1usize, 7, 64, 300] {
            let bytes = container_bytes(&ds, chunk_rows);
            let mut r = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
            assert_eq!(r.n_rows(), 257);
            let back = r.window_dataset(0..257).unwrap();
            assert_eq!(back.len(), ds.len());
            for i in 0..ds.len() {
                assert_eq!(back.label(i), ds.label(i));
                assert_eq!(back.sample(i).cpi().to_bits(), ds.sample(i).cpi().to_bits());
                for e in EventId::ALL {
                    assert_eq!(
                        back.sample(i).get(e).to_bits(),
                        ds.sample(i).get(e).to_bits()
                    );
                }
            }
            // A strict interior window decodes only covering chunks.
            let win = r.window_dataset(40..100).unwrap();
            assert_eq!(win.len(), 60);
            assert_eq!(win.sample(0).cpi().to_bits(), ds.sample(40).cpi().to_bits());
        }
    }

    #[test]
    fn empty_container_roundtrip() {
        let ds = Dataset::new();
        let bytes = container_bytes(&ds, 16);
        let mut r = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        assert_eq!(r.n_rows(), 0);
        assert_eq!(r.n_chunks(), 0);
        assert!(r.window_dataset(0..0).unwrap().is_empty());
    }

    #[test]
    fn chunk_corruption_detected() {
        let ds = sample_dataset(64);
        let bytes = container_bytes(&ds, 16);
        let r = ChunkedReader::open(Cursor::new(bytes.clone())).unwrap();
        let meta = r.meta(2);
        let mut bad = bytes.clone();
        bad[(meta.offset + meta.len / 2) as usize] ^= 0x01;
        let mut r = ChunkedReader::open(Cursor::new(bad)).unwrap();
        // Other chunks still read fine; the poisoned one reports.
        assert!(r.read_chunk(0).is_ok());
        assert_eq!(r.read_chunk(2).unwrap_err(), CodecError::IntegrityMismatch);
    }

    #[test]
    fn directory_truncation_detected() {
        let ds = sample_dataset(32);
        let bytes = container_bytes(&ds, 8);
        for cut in [1usize, 10, 24, 40] {
            let trimmed = &bytes[..bytes.len() - cut];
            assert!(
                ChunkedReader::open(Cursor::new(trimmed.to_vec())).is_err(),
                "cut {cut} undetected"
            );
        }
    }

    #[test]
    fn stale_schema_version_detected() {
        let ds = sample_dataset(8);
        let mut bytes = container_bytes(&ds, 4);
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&(SCHEMA_VERSION + 3).to_le_bytes());
        assert_eq!(
            ChunkedReader::open(Cursor::new(bytes)).unwrap_err(),
            CodecError::WrongVersion(SCHEMA_VERSION + 3)
        );
    }

    #[test]
    fn torn_write_detected_and_rewritten() {
        let ds = sample_dataset(40);
        let mut cursor = Cursor::new(Vec::new());
        {
            let mut w = ChunkedWriter::new(&mut cursor, ds.benchmark_names()).unwrap();
            let body = chunk_of(&ds, 0..20);
            w.append_chunk(&body, Some(body.len() / 3)).unwrap();
            assert_eq!(w.recoveries(), 1);
            let body = chunk_of(&ds, 20..40);
            w.append_chunk(&body, None).unwrap();
            assert_eq!(w.recoveries(), 1);
            w.finish().unwrap();
        }
        let clean = container_bytes(&ds, 20);
        assert_eq!(
            cursor.into_inner(),
            clean,
            "torn write left different bytes"
        );
    }

    #[test]
    fn rewrite_chunk_recovers_corruption() {
        let ds = sample_dataset(48);
        let bytes = container_bytes(&ds, 12);
        let good_body = chunk_of(&ds, 12..24);
        let mut bad = bytes.clone();
        let meta = ChunkedReader::open(Cursor::new(bytes.clone()))
            .unwrap()
            .meta(1);
        bad[(meta.offset + 5) as usize] ^= 0xff;
        let mut r = ChunkedReader::open(Cursor::new(bad)).unwrap();
        assert!(r.read_chunk(1).is_err());
        r.rewrite_chunk(1, &good_body).unwrap();
        assert!(r.read_chunk(1).is_ok());
        assert_eq!(r.into_inner().into_inner(), bytes);
        // A wrong recompute is rejected.
        let mut r = ChunkedReader::open(Cursor::new(container_bytes(&ds, 12))).unwrap();
        let wrong = chunk_of(&ds, 0..12);
        assert!(r.rewrite_chunk(1, &wrong).is_err());
    }

    #[test]
    fn window_fingerprint_tracks_content_and_range() {
        let ds = sample_dataset(60);
        let bytes = container_bytes(&ds, 10);
        let r = ChunkedReader::open(Cursor::new(bytes)).unwrap();
        let a = r.window_fingerprint(&(0..30), "w");
        assert_eq!(a, r.window_fingerprint(&(0..30), "w"));
        assert_ne!(a, r.window_fingerprint(&(0..40), "w"));
        assert_ne!(a, r.window_fingerprint(&(10..40), "w"));
        assert_ne!(a, r.window_fingerprint(&(0..30), "other-domain"));
    }

    #[test]
    fn predict_all_streams_chunks() {
        let ds = sample_dataset(200);
        let tree =
            modeltree::ModelTree::fit(&ds, &modeltree::M5Config::default().with_min_leaf(20))
                .unwrap()
                .compile();
        let bytes = container_bytes(&ds, 33);
        let mut r = ChunkedReader::open(Cursor::new(bytes)).unwrap();
        let streamed = r.predict_all(&tree).unwrap();
        let direct = tree.predict_batch(&ds);
        assert_eq!(streamed.len(), direct.len());
        for (a, b) in streamed.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunks_covering_boundaries() {
        let ds = sample_dataset(40);
        let bytes = container_bytes(&ds, 10);
        let r = ChunkedReader::open(Cursor::new(bytes)).unwrap();
        assert_eq!(r.chunks_covering(&(0..10)), 0..1);
        assert_eq!(r.chunks_covering(&(9..11)), 0..2);
        assert_eq!(r.chunks_covering(&(10..20)), 1..2);
        assert_eq!(r.chunks_covering(&(0..40)), 0..4);
        assert_eq!(r.chunks_covering(&(5..5)), 0..0);
        assert_eq!(r.chunks_covering(&(39..40)), 3..4);
    }
}
