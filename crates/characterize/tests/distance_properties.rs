//! Metric properties of the L1 profile distance and consistency of the
//! profile/similarity/subset pipeline.

use characterize::profile::LeafProfile;
use characterize::{greedy_subset, ProfileTable, SimilarityMatrix};
use modeltree::{M5Config, ModelTree};
use perfcounters::{Dataset, EventId, Sample};
use proptest::prelude::*;

fn profile_strategy(len: usize) -> impl Strategy<Value = LeafProfile> {
    proptest::collection::vec(0.0f64..1.0, len).prop_filter_map(
        "profiles need positive mass",
        |v| {
            if v.iter().sum::<f64>() > 0.0 {
                Some(LeafProfile::from_shares(v))
            } else {
                None
            }
        },
    )
}

proptest! {
    #[test]
    fn l1_is_a_metric(
        a in profile_strategy(8),
        b in profile_strategy(8),
        c in profile_strategy(8),
    ) {
        // Non-negativity and bound.
        let dab = a.l1_distance(&b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dab));
        // Symmetry.
        prop_assert!((dab - b.l1_distance(&a)).abs() < 1e-12);
        // Identity of indiscernibles (distance to self is zero).
        prop_assert!(a.l1_distance(&a) < 1e-12);
        // Triangle inequality.
        let dac = a.l1_distance(&c);
        let dcb = c.l1_distance(&b);
        prop_assert!(dab <= dac + dcb + 1e-9);
    }

    #[test]
    fn shares_normalized(a in profile_strategy(12)) {
        let total: f64 = a.shares().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let dominant = a.dominant_lm();
        prop_assert!((1..=12).contains(&dominant));
        for lm in 1..=12 {
            prop_assert!(a.share(lm) <= a.share(dominant) + 1e-12);
        }
    }
}

/// A multi-benchmark dataset with distinct regimes for cross-module
/// consistency checks.
fn workload() -> (ModelTree, Dataset) {
    let mut ds = Dataset::new();
    let names = ["low", "high", "mixed", "split"];
    let labels: Vec<u32> = names.iter().map(|n| ds.add_benchmark(n)).collect();
    for i in 0..1200 {
        let which = i % 4;
        let high = match which {
            0 => false,
            1 => true,
            2 => i % 8 < 4,
            _ => i % 16 < 4,
        };
        let (v, cpi) = if high { (0.9, 2.0) } else { (0.1, 0.5) };
        let mut s = Sample::zeros(cpi);
        s.set(EventId::Store, v);
        ds.push(s, labels[which]);
    }
    let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
    (tree, ds)
}

#[test]
fn suite_profile_is_weighted_mean_of_benchmarks() {
    let (tree, ds) = workload();
    let table = ProfileTable::build(&tree, &ds);
    // Equal sample counts here, so Suite == Average == mean of profiles.
    for lm in 1..=table.n_leaves() {
        let mean: f64 = table.profiles().iter().map(|p| p.share(lm)).sum::<f64>()
            / table.profiles().len() as f64;
        assert!((table.suite().share(lm) - mean).abs() < 1e-9);
        assert!((table.average().share(lm) - mean).abs() < 1e-9);
    }
}

#[test]
fn subset_coverage_decreases_monotonically_in_k() {
    let (tree, ds) = workload();
    let table = ProfileTable::build(&tree, &ds);
    let mut last = f64::INFINITY;
    for k in 1..=4 {
        let r = greedy_subset(&table, k);
        assert!(
            r.max_distance <= last + 1e-12,
            "coverage worsened at k={k}: {} > {last}",
            r.max_distance
        );
        last = r.max_distance;
    }
}

#[test]
fn matrix_distances_bounded_by_profile_support() {
    let (tree, ds) = workload();
    let table = ProfileTable::build(&tree, &ds);
    let matrix = SimilarityMatrix::from_table(&table);
    let d_lh = matrix.distance_by_name("low", "high").unwrap();
    let d_lm = matrix.distance_by_name("low", "mixed").unwrap();
    let d_ls = matrix.distance_by_name("low", "split").unwrap();
    // "mixed" (50/50) sits between "low" (0/100) and "high" (100/0);
    // "split" (25/75 toward low) is nearer to "low" than "mixed" is.
    assert!(d_lm < d_lh);
    assert!(d_ls < d_lm, "{d_ls} vs {d_lm}");
}
