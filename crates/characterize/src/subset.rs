//! Benchmark subsetting over leaf-profile vectors.
//!
//! The paper's related-work section surveys subsetting studies that pick
//! a representative subset of a benchmark suite to cut simulation cost
//! (PCA + clustering, P&B, ICA). The leaf profiles of Section IV-B give
//! a natural feature space for the same application: benchmarks whose
//! profiles are close excite the same behavior classes, so one per
//! cluster suffices. Two selectors are provided: k-means (cluster, then
//! take the benchmark nearest each centroid) and a greedy k-center
//! selector (repeatedly add the benchmark farthest from the current
//! subset).

use crate::profile::ProfileTable;
use mathkit::sampling::permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The outcome of a subsetting run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsetResult {
    /// Names of the selected representative benchmarks.
    pub selected: Vec<String>,
    /// For every benchmark, the index (into `selected`) of its
    /// representative.
    pub assignment: Vec<usize>,
    /// Maximum L1 distance from any benchmark to its representative —
    /// the coverage radius of the subset.
    pub max_distance: f64,
    /// Mean L1 distance from benchmarks to their representatives.
    pub mean_distance: f64,
}

fn l1(a: &[f64], b: &[f64]) -> f64 {
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

fn finalize(table: &ProfileTable, selected_idx: &[usize]) -> SubsetResult {
    let profiles = table.profiles();
    let mut assignment = Vec::with_capacity(profiles.len());
    let mut max_distance: f64 = 0.0;
    let mut total = 0.0;
    for p in profiles {
        let (best, d) = selected_idx
            .iter()
            .enumerate()
            .map(|(k, &s)| (k, l1(p.shares(), profiles[s].shares())))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one representative");
        assignment.push(best);
        max_distance = max_distance.max(d);
        total += d;
    }
    SubsetResult {
        selected: selected_idx
            .iter()
            .map(|&i| table.names()[i].clone())
            .collect(),
        assignment,
        max_distance,
        mean_distance: total / profiles.len().max(1) as f64,
    }
}

/// k-means clustering over profile vectors (L2 in the clustering step,
/// L1 for reporting), selecting the benchmark closest to each centroid.
///
/// # Panics
///
/// Panics if `k` is zero or larger than the number of benchmarks.
pub fn kmeans_subset(table: &ProfileTable, k: usize, seed: u64) -> SubsetResult {
    let n = table.names().len();
    assert!(k >= 1 && k <= n, "k = {k} out of range (n = {n})");
    let profiles = table.profiles();
    let dim = table.n_leaves();
    let mut rng = StdRng::seed_from_u64(seed);

    // Initialize with k distinct random benchmarks.
    let order = permutation(&mut rng, n);
    let mut centroids: Vec<Vec<f64>> = order[..k]
        .iter()
        .map(|&i| profiles[i].shares().to_vec())
        .collect();

    let mut assignment = vec![0usize; n];
    for _ in 0..100 {
        // Assign.
        let mut changed = false;
        for (i, p) in profiles.iter().enumerate() {
            let best = (0..k)
                .map(|c| {
                    let d: f64 = p
                        .shares()
                        .iter()
                        .zip(&centroids[c])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    (c, d)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("k >= 1")
                .0;
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue; // keep the old centroid
            }
            for (d, slot) in centroid.iter_mut().enumerate().take(dim) {
                *slot = members
                    .iter()
                    .map(|&i| profiles[i].shares()[d])
                    .sum::<f64>()
                    / members.len() as f64;
            }
        }
        if !changed {
            break;
        }
    }

    // Pick each cluster's medoid (nearest member to the centroid);
    // empty clusters fall back to the farthest-from-selected benchmark.
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    for (c, centroid) in centroids.iter().enumerate().take(k) {
        let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
        let pick = members.iter().copied().min_by(|&a, &b| {
            let da: f64 = profiles[a]
                .shares()
                .iter()
                .zip(centroid)
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            let db: f64 = profiles[b]
                .shares()
                .iter()
                .zip(centroid)
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            da.total_cmp(&db)
        });
        if let Some(p) = pick {
            if !selected.contains(&p) {
                selected.push(p);
            }
        }
    }
    // Guarantee k representatives even after collisions/empty clusters.
    let mut cursor = 0;
    while selected.len() < k {
        if !selected.contains(&order[cursor]) {
            selected.push(order[cursor]);
        }
        cursor += 1;
    }
    finalize(table, &selected)
}

/// Greedy k-center subsetting: start from the benchmark closest to the
/// suite profile, then repeatedly add the benchmark farthest (L1) from
/// the current subset. Deterministic.
///
/// # Panics
///
/// Panics if `k` is zero or larger than the number of benchmarks.
pub fn greedy_subset(table: &ProfileTable, k: usize) -> SubsetResult {
    let n = table.names().len();
    assert!(k >= 1 && k <= n, "k = {k} out of range (n = {n})");
    let profiles = table.profiles();

    // Seed: most suite-representative benchmark.
    let seed_idx = (0..n)
        .min_by(|&a, &b| {
            let da = profiles[a].l1_distance(table.suite());
            let db = profiles[b].l1_distance(table.suite());
            da.total_cmp(&db)
        })
        .expect("non-empty table");
    let mut selected = vec![seed_idx];
    while selected.len() < k {
        let next = (0..n)
            .filter(|i| !selected.contains(i))
            .max_by(|&a, &b| {
                let da = selected
                    .iter()
                    .map(|&s| profiles[a].l1_distance(&profiles[s]))
                    .fold(f64::INFINITY, f64::min);
                let db = selected
                    .iter()
                    .map(|&s| profiles[b].l1_distance(&profiles[s]))
                    .fold(f64::INFINITY, f64::min);
                da.total_cmp(&db)
            })
            .expect("candidates remain");
        selected.push(next);
    }
    finalize(table, &selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modeltree::{M5Config, ModelTree};
    use perfcounters::{Dataset, EventId, Sample};

    /// Six benchmarks in two sharply distinct behavior groups.
    fn grouped_table() -> ProfileTable {
        let mut ds = Dataset::new();
        let names = ["a1", "a2", "a3", "b1", "b2", "b3"];
        let labels: Vec<u32> = names.iter().map(|n| ds.add_benchmark(n)).collect();
        for (g, &label) in labels.iter().enumerate() {
            let high = g >= 3;
            for _ in 0..100 {
                let (v, cpi) = if high { (0.9, 2.0) } else { (0.1, 0.5) };
                let mut s = Sample::zeros(cpi);
                s.set(EventId::Store, v);
                ds.push(s, label);
            }
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        ProfileTable::build(&tree, &ds)
    }

    #[test]
    fn greedy_covers_both_groups() {
        let table = grouped_table();
        let result = greedy_subset(&table, 2);
        assert_eq!(result.selected.len(), 2);
        let has_a = result.selected.iter().any(|n| n.starts_with('a'));
        let has_b = result.selected.iter().any(|n| n.starts_with('b'));
        assert!(has_a && has_b, "selected {:?}", result.selected);
        // Within-group distance is ~0, so coverage should be ~perfect.
        assert!(result.max_distance < 0.05, "{}", result.max_distance);
    }

    #[test]
    fn kmeans_covers_both_groups() {
        let table = grouped_table();
        let result = kmeans_subset(&table, 2, 42);
        let has_a = result.selected.iter().any(|n| n.starts_with('a'));
        let has_b = result.selected.iter().any(|n| n.starts_with('b'));
        assert!(has_a && has_b, "selected {:?}", result.selected);
        assert!(result.max_distance < 0.05);
    }

    #[test]
    fn k_equals_n_is_exact() {
        let table = grouped_table();
        let result = greedy_subset(&table, 6);
        assert_eq!(result.selected.len(), 6);
        assert_eq!(result.max_distance, 0.0);
        assert_eq!(result.mean_distance, 0.0);
    }

    #[test]
    fn k1_coverage_is_worst() {
        let table = grouped_table();
        let k1 = greedy_subset(&table, 1);
        let k2 = greedy_subset(&table, 2);
        assert!(k1.max_distance >= k2.max_distance);
        // With one representative, the other group is ~distance 1 away.
        assert!(k1.max_distance > 0.8);
    }

    #[test]
    fn assignment_indices_valid() {
        let table = grouped_table();
        for result in [greedy_subset(&table, 3), kmeans_subset(&table, 3, 7)] {
            assert_eq!(result.assignment.len(), 6);
            assert!(result.assignment.iter().all(|&a| a < result.selected.len()));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_k_panics() {
        let table = grouped_table();
        let _ = greedy_subset(&table, 0);
    }

    #[test]
    fn kmeans_deterministic_given_seed() {
        let table = grouped_table();
        let a = kmeans_subset(&table, 2, 9);
        let b = kmeans_subset(&table, 2, 9);
        assert_eq!(a, b);
    }
}
