//! Pairwise benchmark similarity (the paper's Table III).

use crate::profile::ProfileTable;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A symmetric matrix of L1 profile distances between benchmarks, plus
/// each benchmark's distance to the whole-suite profile (the last row of
/// Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityMatrix {
    names: Vec<String>,
    /// Row-major `n x n` distances in `[0, 1]`.
    distances: Vec<f64>,
    /// Distance of each benchmark to the suite profile.
    to_suite: Vec<f64>,
}

impl SimilarityMatrix {
    /// Builds the matrix from a profile table.
    pub fn from_table(table: &ProfileTable) -> SimilarityMatrix {
        let n = table.names().len();
        let mut distances = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = table.profiles()[i].l1_distance(&table.profiles()[j]);
                distances[i * n + j] = d;
                distances[j * n + i] = d;
            }
        }
        let to_suite = table
            .profiles()
            .iter()
            .map(|p| p.l1_distance(table.suite()))
            .collect();
        SimilarityMatrix {
            names: table.names().to_vec(),
            distances,
            to_suite,
        }
    }

    /// Benchmark names, in matrix order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Distance between two benchmarks by index.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        let n = self.names.len();
        assert!(i < n && j < n, "index out of bounds");
        self.distances[i * n + j]
    }

    /// Distance between two benchmarks by name.
    pub fn distance_by_name(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.names.iter().position(|n| n == a)?;
        let j = self.names.iter().position(|n| n == b)?;
        Some(self.distance(i, j))
    }

    /// Distance of one benchmark to the whole-suite profile.
    pub fn distance_to_suite(&self, name: &str) -> Option<f64> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(self.to_suite[i])
    }

    /// The `k` most similar benchmark pairs (smallest distances),
    /// ascending.
    pub fn most_similar_pairs(&self, k: usize) -> Vec<(String, String, f64)> {
        self.sorted_pairs(k, false)
    }

    /// The `k` most dissimilar benchmark pairs (largest distances),
    /// descending.
    pub fn most_dissimilar_pairs(&self, k: usize) -> Vec<(String, String, f64)> {
        self.sorted_pairs(k, true)
    }

    fn sorted_pairs(&self, k: usize, descending: bool) -> Vec<(String, String, f64)> {
        let n = self.names.len();
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i, j, self.distance(i, j)));
            }
        }
        pairs.sort_by(|a, b| {
            if descending {
                b.2.total_cmp(&a.2)
            } else {
                a.2.total_cmp(&b.2)
            }
        });
        pairs
            .into_iter()
            .take(k)
            .map(|(i, j, d)| (self.names[i].clone(), self.names[j].clone(), d))
            .collect()
    }

    /// Renders a Table III-style matrix (percent distances) for a subset
    /// of benchmarks, with a final row of distances to the suite.
    /// Unknown names are skipped.
    pub fn render_subset(&self, subset: &[&str]) -> String {
        let indices: Vec<usize> = subset
            .iter()
            .filter_map(|name| self.names.iter().position(|n| n == name))
            .collect();
        let mut out = String::new();
        let _ = write!(out, "{:<16}", "");
        for &j in &indices {
            let _ = write!(out, " {:>14}", self.names[j]);
        }
        out.push('\n');
        for &i in &indices {
            let _ = write!(out, "{:<16}", self.names[i]);
            for &j in &indices {
                let _ = write!(out, " {:>13.1}%", 100.0 * self.distance(i, j));
            }
            out.push('\n');
        }
        let _ = write!(out, "{:<16}", "Suite");
        for &j in &indices {
            let _ = write!(out, " {:>13.1}%", 100.0 * self.to_suite[j]);
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileTable;
    use modeltree::{M5Config, ModelTree};
    use perfcounters::{Dataset, EventId, Sample};

    fn three_benchmark_matrix() -> SimilarityMatrix {
        let mut ds = Dataset::new();
        let a = ds.add_benchmark("a");
        let b = ds.add_benchmark("b");
        let c = ds.add_benchmark("c");
        // a: all low; b: all high; c: half and half.
        for i in 0..600 {
            let label = match i % 3 {
                0 => a,
                1 => b,
                _ => c,
            };
            let high = match label {
                x if x == a => false,
                x if x == b => true,
                _ => i % 6 < 3,
            };
            let (v, cpi) = if high { (0.9, 2.0) } else { (0.1, 0.5) };
            let mut s = Sample::zeros(cpi);
            s.set(EventId::Store, v);
            ds.push(s, label);
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        SimilarityMatrix::from_table(&ProfileTable::build(&tree, &ds))
    }

    #[test]
    fn diagonal_is_zero_and_symmetric() {
        let m = three_benchmark_matrix();
        for i in 0..3 {
            assert_eq!(m.distance(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.distance(i, j), m.distance(j, i));
            }
        }
    }

    #[test]
    fn extremes_are_far_mixture_in_between() {
        let m = three_benchmark_matrix();
        let ab = m.distance_by_name("a", "b").unwrap();
        let ac = m.distance_by_name("a", "c").unwrap();
        let bc = m.distance_by_name("b", "c").unwrap();
        assert!(ab > 0.9, "ab {ab}");
        assert!(ac < ab && bc < ab);
        assert!((ac - 0.5).abs() < 0.15, "ac {ac}");
    }

    #[test]
    fn mixture_is_closest_to_suite() {
        let m = three_benchmark_matrix();
        let da = m.distance_to_suite("a").unwrap();
        let dc = m.distance_to_suite("c").unwrap();
        assert!(dc < da, "c should resemble the suite: {dc} vs {da}");
        assert!(m.distance_to_suite("nope").is_none());
    }

    #[test]
    fn pair_rankings() {
        let m = three_benchmark_matrix();
        let similar = m.most_similar_pairs(1);
        let dissimilar = m.most_dissimilar_pairs(1);
        assert_eq!(dissimilar[0].2, m.distance_by_name("a", "b").unwrap());
        assert!(similar[0].2 <= dissimilar[0].2);
        assert_eq!(m.most_similar_pairs(100).len(), 3); // all pairs
    }

    #[test]
    fn render_subset_layout() {
        let m = three_benchmark_matrix();
        let text = m.render_subset(&["a", "b", "unknown"]);
        assert!(text.contains("Suite"));
        assert!(text.contains('%'));
        assert!(!text.contains("unknown"));
        // Header + 2 benchmark rows + suite row.
        assert_eq!(text.lines().count(), 4);
    }
}
