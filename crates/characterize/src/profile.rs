//! Leaf-profile distributions (the paper's Tables II and IV).

use modeltree::ModelTree;
use perfcounters::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The distribution of a sample set over a tree's linear models.
///
/// `shares[k]` is the fraction of samples classified into `LM(k+1)`;
/// shares sum to 1 for a non-empty sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafProfile {
    shares: Vec<f64>,
}

impl LeafProfile {
    /// Classifies every sample of `data` through `tree` (compiled once
    /// into the flat batch engine).
    pub fn of(tree: &ModelTree, data: &Dataset) -> LeafProfile {
        let mut counts = vec![0usize; tree.n_leaves()];
        for lm in tree.compile().classify_batch(data) {
            counts[lm as usize - 1] += 1;
        }
        let n = data.len().max(1) as f64;
        LeafProfile {
            shares: counts.iter().map(|&c| c as f64 / n).collect(),
        }
    }

    /// Builds a profile directly from shares (normalizing them).
    ///
    /// # Panics
    ///
    /// Panics if `shares` is empty or sums to zero with any non-zero
    /// entry requested.
    pub fn from_shares(shares: Vec<f64>) -> LeafProfile {
        assert!(!shares.is_empty(), "profile must have at least one leaf");
        let total: f64 = shares.iter().sum();
        if total > 0.0 {
            LeafProfile {
                shares: shares.iter().map(|s| s / total).collect(),
            }
        } else {
            LeafProfile { shares }
        }
    }

    /// Share of samples in linear model `lm_index` (1-based).
    ///
    /// Returns 0 for out-of-range indices.
    pub fn share(&self, lm_index: usize) -> f64 {
        if lm_index == 0 {
            return 0.0;
        }
        self.shares.get(lm_index - 1).copied().unwrap_or(0.0)
    }

    /// All shares, indexed by `lm_index - 1`.
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// The 1-based index of the dominant linear model.
    pub fn dominant_lm(&self) -> usize {
        self.shares
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i + 1)
            .unwrap_or(1)
    }

    /// The L1 (Manhattan) distance of the paper's Equation 4:
    /// `D = (1/2) Σ_i |s_i - t_i|`, in `[0, 1]`.
    pub fn l1_distance(&self, other: &LeafProfile) -> f64 {
        let len = self.shares.len().max(other.shares.len());
        let mut total = 0.0;
        for i in 0..len {
            let a = self.shares.get(i).copied().unwrap_or(0.0);
            let b = other.shares.get(i).copied().unwrap_or(0.0);
            total += (a - b).abs();
        }
        0.5 * total
    }
}

/// Per-benchmark leaf profiles plus the two aggregate rows of Tables II
/// and IV: the sample-weighted "Suite" row and the equally-weighted
/// "Average" row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileTable {
    names: Vec<String>,
    profiles: Vec<LeafProfile>,
    suite: LeafProfile,
    average: LeafProfile,
    n_leaves: usize,
}

impl ProfileTable {
    /// Classifies a labeled dataset through a tree, producing one profile
    /// per benchmark. Benchmarks without samples get an all-zero profile.
    pub fn build(tree: &ModelTree, data: &Dataset) -> ProfileTable {
        let n_leaves = tree.n_leaves();
        let n_benchmarks = data.benchmark_count();
        let mut counts = vec![vec![0usize; n_leaves]; n_benchmarks];
        let mut totals = vec![0usize; n_benchmarks];
        let mut suite_counts = vec![0usize; n_leaves];
        let classes = tree.compile().classify_batch(data);
        for ((_, label), lm) in data.iter().zip(classes) {
            let lm = lm as usize - 1;
            counts[label as usize][lm] += 1;
            totals[label as usize] += 1;
            suite_counts[lm] += 1;
        }
        let profiles: Vec<LeafProfile> = counts
            .iter()
            .zip(&totals)
            .map(|(c, &t)| LeafProfile {
                shares: c
                    .iter()
                    .map(|&x| if t > 0 { x as f64 / t as f64 } else { 0.0 })
                    .collect(),
            })
            .collect();
        let n = data.len().max(1) as f64;
        let suite = LeafProfile {
            shares: suite_counts.iter().map(|&c| c as f64 / n).collect(),
        };
        let populated: Vec<&LeafProfile> = profiles
            .iter()
            .zip(&totals)
            .filter(|(_, &t)| t > 0)
            .map(|(p, _)| p)
            .collect();
        let average = LeafProfile {
            shares: (0..n_leaves)
                .map(|i| {
                    if populated.is_empty() {
                        0.0
                    } else {
                        populated.iter().map(|p| p.shares[i]).sum::<f64>() / populated.len() as f64
                    }
                })
                .collect(),
        };
        ProfileTable {
            names: data.benchmark_names().to_vec(),
            profiles,
            suite,
            average,
            n_leaves,
        }
    }

    /// Benchmark names, in label order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of linear models (columns).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The profile of one benchmark, by name.
    pub fn profile(&self, name: &str) -> Option<&LeafProfile> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(&self.profiles[idx])
    }

    /// All per-benchmark profiles, in label order.
    pub fn profiles(&self) -> &[LeafProfile] {
        &self.profiles
    }

    /// The sample-weighted suite profile (the "Suite" row): weights are
    /// proportional to each benchmark's sample (instruction) count.
    pub fn suite(&self) -> &LeafProfile {
        &self.suite
    }

    /// The equally-weighted benchmark average (the "Average" row).
    pub fn average(&self) -> &LeafProfile {
        &self.average
    }

    /// Renders the table in the paper's Table II/IV layout: one row per
    /// benchmark plus Suite and Average rows, entries in percent, and
    /// entries of 20% or more flagged with `*` (the paper sets them in
    /// bold).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<16}", "benchmark");
        for lm in 1..=self.n_leaves {
            let _ = write!(out, " {:>6}", format!("LM{lm}"));
        }
        out.push('\n');
        let mut row = |name: &str, p: &LeafProfile| {
            let _ = write!(out, "{name:<16}");
            for lm in 1..=self.n_leaves {
                let pct = 100.0 * p.share(lm);
                if pct >= 20.0 {
                    let _ = write!(out, " {:>5.1}*", pct);
                } else {
                    let _ = write!(out, " {:>6.1}", pct);
                }
            }
            out.push('\n');
        };
        for (name, p) in self.names.iter().zip(&self.profiles) {
            row(name, p);
        }
        row("Suite", &self.suite);
        row("Average", &self.average);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modeltree::M5Config;
    use perfcounters::{EventId, Sample};

    /// Two benchmarks, two clearly separated regimes.
    fn two_benchmark_setup() -> (ModelTree, Dataset) {
        let mut ds = Dataset::new();
        let a = ds.add_benchmark("alpha");
        let b = ds.add_benchmark("beta");
        for i in 0..400 {
            // alpha: 90% low regime; beta: 90% high regime.
            let is_alpha = i % 2 == 0;
            let label = if is_alpha { a } else { b };
            let high = if is_alpha { i % 20 == 0 } else { i % 20 != 1 };
            let (v, cpi) = if high { (0.9, 2.0) } else { (0.1, 0.5) };
            let mut s = Sample::zeros(cpi);
            s.set(EventId::Store, v);
            ds.push(s, label);
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        (tree, ds)
    }

    #[test]
    fn profile_shares_sum_to_one() {
        let (tree, ds) = two_benchmark_setup();
        let p = LeafProfile::of(&tree, &ds);
        assert!((p.shares().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distance_properties() {
        let (tree, ds) = two_benchmark_setup();
        let table = ProfileTable::build(&tree, &ds);
        let pa = table.profile("alpha").unwrap();
        let pb = table.profile("beta").unwrap();
        // Identity and symmetry.
        assert_eq!(pa.l1_distance(pa), 0.0);
        assert!((pa.l1_distance(pb) - pb.l1_distance(pa)).abs() < 1e-12);
        // Bounded in [0, 1].
        let d = pa.l1_distance(pb);
        assert!((0.0..=1.0).contains(&d));
        // The regimes are 90/10 vs 10/90 -> distance ~0.8.
        assert!(d > 0.6, "distance {d}");
    }

    #[test]
    fn from_shares_normalizes() {
        let p = LeafProfile::from_shares(vec![2.0, 2.0]);
        assert_eq!(p.share(1), 0.5);
        assert_eq!(p.share(2), 0.5);
        assert_eq!(p.share(3), 0.0);
        assert_eq!(p.share(0), 0.0);
    }

    #[test]
    fn dominant_lm() {
        let p = LeafProfile::from_shares(vec![0.2, 0.5, 0.3]);
        assert_eq!(p.dominant_lm(), 2);
    }

    #[test]
    fn suite_row_is_weighted_average_row_is_not() {
        // alpha has 300 samples, beta has 100: Suite row leans alpha,
        // Average row does not.
        let mut ds = Dataset::new();
        let a = ds.add_benchmark("alpha");
        let b = ds.add_benchmark("beta");
        for i in 0..300 {
            let mut s = Sample::zeros(0.5);
            s.set(EventId::Store, 0.1);
            let _ = i;
            ds.push(s, a);
        }
        for _ in 0..100 {
            let mut s = Sample::zeros(2.0);
            s.set(EventId::Store, 0.9);
            ds.push(s, b);
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let table = ProfileTable::build(&tree, &ds);
        assert!(tree.n_leaves() >= 2);
        let alpha_lm = table.profile("alpha").unwrap().dominant_lm();
        // Suite: 75% weight on alpha's leaf; Average: 50%.
        assert!((table.suite().share(alpha_lm) - 0.75).abs() < 0.01);
        assert!((table.average().share(alpha_lm) - 0.50).abs() < 0.01);
    }

    #[test]
    fn empty_benchmark_gets_zero_profile() {
        let mut ds = Dataset::new();
        let a = ds.add_benchmark("used");
        let _empty = ds.add_benchmark("empty");
        for _ in 0..50 {
            ds.push(Sample::zeros(1.0), a);
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let table = ProfileTable::build(&tree, &ds);
        let p = table.profile("empty").unwrap();
        assert!(p.shares().iter().all(|&s| s == 0.0));
        // The Average row must not be dragged down by the empty profile.
        assert!((table.average().share(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_contains_all_rows() {
        let (tree, ds) = two_benchmark_setup();
        let table = ProfileTable::build(&tree, &ds);
        let text = table.render();
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("Suite"));
        assert!(text.contains("Average"));
        assert!(text.contains("LM1"));
        // Dominant entries are starred (>= 20%).
        assert!(text.contains('*'));
    }

    #[test]
    fn mismatched_profile_lengths_compare() {
        let a = LeafProfile::from_shares(vec![1.0]);
        let b = LeafProfile::from_shares(vec![0.0, 1.0]);
        assert!((a.l1_distance(&b) - 1.0).abs() < 1e-12);
    }
}
