//! Behavior-class timelines over time-ordered interval streams.
//!
//! Classifying each interval of an execution trace through a model tree
//! yields a sequence of behavior classes (linear-model indices). This
//! module analyzes such sequences: run-length structure, class
//! transition statistics, and agreement with ground-truth phase labels —
//! the temporal complement to the aggregate profiles of
//! [`crate::profile`].

use modeltree::ModelTree;
use perfcounters::Sample;
use serde::{Deserialize, Serialize};

/// A time-ordered sequence of behavior classes (1-based LM indices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassTimeline {
    classes: Vec<usize>,
    n_classes: usize,
}

impl ClassTimeline {
    /// Classifies a time-ordered slice of samples through a tree
    /// (compiled once into the flat batch engine).
    pub fn classify(tree: &ModelTree, samples: &[Sample]) -> ClassTimeline {
        let engine = tree.compile();
        ClassTimeline {
            classes: samples.iter().map(|s| engine.classify(s)).collect(),
            n_classes: tree.n_leaves(),
        }
    }

    /// Builds a timeline from a raw class sequence.
    ///
    /// # Panics
    ///
    /// Panics if any class index is 0 (classes are 1-based).
    pub fn from_classes(classes: Vec<usize>) -> ClassTimeline {
        assert!(
            classes.iter().all(|&c| c >= 1),
            "classes are 1-based LM indices"
        );
        let n_classes = classes.iter().copied().max().unwrap_or(0);
        ClassTimeline { classes, n_classes }
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The class sequence.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Run-length encoding: `(class, length)` in time order.
    pub fn runs(&self) -> Vec<(usize, usize)> {
        let mut runs: Vec<(usize, usize)> = Vec::new();
        for &c in &self.classes {
            match runs.last_mut() {
                Some((class, len)) if *class == c => *len += 1,
                _ => runs.push((c, 1)),
            }
        }
        runs
    }

    /// Mean run length (0 for an empty timeline).
    pub fn mean_run_length(&self) -> f64 {
        let runs = self.runs();
        if runs.is_empty() {
            0.0
        } else {
            self.len() as f64 / runs.len() as f64
        }
    }

    /// Class transition counts: `matrix[a-1][b-1]` counts transitions
    /// from class `a` to class `b` between *different* consecutive
    /// classes (self-transitions excluded).
    pub fn transition_matrix(&self) -> Vec<Vec<usize>> {
        let n = self.n_classes;
        let mut m = vec![vec![0usize; n]; n];
        for w in self.classes.windows(2) {
            if w[0] != w[1] {
                m[w[0] - 1][w[1] - 1] += 1;
            }
        }
        m
    }

    /// Purity of the timeline against ground-truth labels: for each
    /// distinct label, take its most common class; the returned fraction
    /// is the share of intervals whose class matches their label's
    /// dominant class. 1.0 means classes recover the labels perfectly.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.len()`.
    pub fn purity_against(&self, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), self.len(), "label/timeline length mismatch");
        if self.is_empty() {
            return 1.0;
        }
        let n_labels = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut counts = vec![std::collections::HashMap::<usize, usize>::new(); n_labels];
        for (&label, &class) in labels.iter().zip(&self.classes) {
            *counts[label].entry(class).or_insert(0) += 1;
        }
        let matched: usize = counts
            .iter()
            .map(|by_class| by_class.values().copied().max().unwrap_or(0))
            .sum();
        matched as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modeltree::M5Config;
    use perfcounters::{Dataset, EventId};

    #[test]
    fn runs_and_mean_length() {
        let t = ClassTimeline::from_classes(vec![1, 1, 2, 2, 2, 1]);
        assert_eq!(t.runs(), vec![(1, 2), (2, 3), (1, 1)]);
        assert!((t.mean_run_length() - 2.0).abs() < 1e-12);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn empty_timeline() {
        let t = ClassTimeline::from_classes(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.mean_run_length(), 0.0);
        assert!(t.runs().is_empty());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_class_rejected() {
        let _ = ClassTimeline::from_classes(vec![0, 1]);
    }

    #[test]
    fn transition_matrix_excludes_self_loops() {
        let t = ClassTimeline::from_classes(vec![1, 1, 2, 1, 2, 2]);
        let m = t.transition_matrix();
        assert_eq!(m[0][1], 2); // 1 -> 2 twice
        assert_eq!(m[1][0], 1); // 2 -> 1 once
        assert_eq!(m[0][0], 0);
        assert_eq!(m[1][1], 0);
    }

    #[test]
    fn purity_perfect_and_mixed() {
        let t = ClassTimeline::from_classes(vec![1, 1, 2, 2]);
        assert_eq!(t.purity_against(&[0, 0, 1, 1]), 1.0);
        // Label 0 maps to class 1 (dominant 2 of 3), label 1 to class 2.
        let t = ClassTimeline::from_classes(vec![1, 1, 2, 2]);
        assert!((t.purity_against(&[0, 0, 0, 1]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn classify_through_tree() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("toy");
        for i in 0..200 {
            let (v, cpi) = if i % 2 == 0 { (0.1, 0.5) } else { (0.9, 2.0) };
            let mut s = Sample::zeros(cpi);
            s.set(EventId::Store, v);
            ds.push(s, b);
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let samples: Vec<Sample> = (0..20).map(|i| ds.sample(i).clone()).collect();
        let t = ClassTimeline::classify(&tree, &samples);
        assert_eq!(t.len(), 20);
        // Alternating samples -> alternating classes -> run length 1.
        assert!((t.mean_run_length() - 1.0).abs() < 1e-12);
        let truth: Vec<usize> = (0..20).map(|i| i % 2).collect();
        assert_eq!(t.purity_against(&truth), 1.0);
    }
}
