//! Principal component analysis over PMU event densities.
//!
//! The paper's related work (its references \[12\]–\[14\]) subsets benchmark
//! suites by running PCA over performance-counter data and clustering the
//! benchmarks in the reduced space. This module provides that comparator
//! so the LM-profile subsetting of [`crate::subset`] can be evaluated
//! against the standard approach: fit PCA on the standardized event
//! columns, place each benchmark at its mean projection, and cluster.

use mathkit::eigen::symmetric_eigen;
use mathkit::matrix::Matrix;
use perfcounters::events::{EventId, N_EVENTS};
use perfcounters::{Dataset, Sample};
use serde::{Deserialize, Serialize};

/// A fitted PCA model over the 19 Table I event densities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcaModel {
    mean: [f64; N_EVENTS],
    scale: [f64; N_EVENTS],
    /// Row `c` is principal component `c` (unit length), `n_components x
    /// N_EVENTS`.
    components: Vec<Vec<f64>>,
    explained: Vec<f64>,
}

impl PcaModel {
    /// Fits PCA on a dataset: columns are standardized (zero mean, unit
    /// variance; constant columns are left centered only), the
    /// correlation matrix is eigendecomposed, and the top
    /// `n_components` eigenvectors retained.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer than 2 samples or `n_components`
    /// is 0 or exceeds the event count.
    pub fn fit(data: &Dataset, n_components: usize) -> PcaModel {
        assert!(data.len() >= 2, "PCA needs at least 2 samples");
        assert!(
            (1..=N_EVENTS).contains(&n_components),
            "n_components {n_components} out of range"
        );
        let n = data.len() as f64;
        let mut mean = [0.0; N_EVENTS];
        for i in 0..data.len() {
            for (m, d) in mean.iter_mut().zip(data.sample(i).densities()) {
                *m += d;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = [0.0; N_EVENTS];
        for i in 0..data.len() {
            for ((v, d), m) in var.iter_mut().zip(data.sample(i).densities()).zip(&mean) {
                *v += (d - m) * (d - m);
            }
        }
        let mut scale = [1.0; N_EVENTS];
        for (s, v) in scale.iter_mut().zip(&var) {
            let sd = (v / (n - 1.0)).sqrt();
            *s = if sd > 0.0 { 1.0 / sd } else { 0.0 };
        }

        // Correlation matrix of the standardized columns.
        let mut corr = Matrix::zeros(N_EVENTS, N_EVENTS);
        for i in 0..data.len() {
            let d = data.sample(i).densities();
            let z: Vec<f64> = (0..N_EVENTS).map(|c| (d[c] - mean[c]) * scale[c]).collect();
            for a in 0..N_EVENTS {
                if z[a] == 0.0 {
                    continue;
                }
                for b in a..N_EVENTS {
                    corr[(a, b)] += z[a] * z[b];
                }
            }
        }
        for a in 0..N_EVENTS {
            for b in 0..a {
                corr[(a, b)] = corr[(b, a)];
            }
            for b in a..N_EVENTS {
                corr[(a, b)] /= n - 1.0;
            }
        }
        for a in 0..N_EVENTS {
            for b in 0..a {
                corr[(a, b)] = corr[(b, a)];
            }
        }

        let eigen = symmetric_eigen(&corr).expect("correlation matrix is symmetric");
        let total: f64 = eigen.values().iter().map(|v| v.max(0.0)).sum();
        let components: Vec<Vec<f64>> = (0..n_components).map(|c| eigen.vector(c)).collect();
        let explained: Vec<f64> = (0..n_components)
            .map(|c| eigen.values()[c].max(0.0) / total.max(1e-300))
            .collect();
        PcaModel {
            mean,
            scale,
            components,
            explained,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Fraction of total variance explained by each retained component.
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained
    }

    /// The loading of one event on one component.
    pub fn loading(&self, component: usize, event: EventId) -> f64 {
        self.components[component][event.index()]
    }

    /// Projects one sample into the component space.
    pub fn project(&self, sample: &Sample) -> Vec<f64> {
        let d = sample.densities();
        self.components
            .iter()
            .map(|comp| {
                (0..N_EVENTS)
                    .map(|c| comp[c] * (d[c] - self.mean[c]) * self.scale[c])
                    .sum()
            })
            .collect()
    }

    /// Mean projection of each benchmark in a labeled dataset; returns
    /// `(names, coordinates)` in label order. Benchmarks without samples
    /// sit at the origin.
    pub fn benchmark_coordinates(&self, data: &Dataset) -> (Vec<String>, Vec<Vec<f64>>) {
        let k = self.n_components();
        let nb = data.benchmark_count();
        let mut sums = vec![vec![0.0; k]; nb];
        let mut counts = vec![0usize; nb];
        for (sample, label) in data.iter() {
            let p = self.project(sample);
            for (s, v) in sums[label as usize].iter_mut().zip(&p) {
                *s += v;
            }
            counts[label as usize] += 1;
        }
        for (s, &c) in sums.iter_mut().zip(&counts) {
            if c > 0 {
                for v in s.iter_mut() {
                    *v /= c as f64;
                }
            }
        }
        (data.benchmark_names().to_vec(), sums)
    }
}

/// A PCA-space benchmark subset (the related-work comparator to
/// [`crate::subset`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcaSubset {
    /// Names of the selected representative benchmarks.
    pub selected: Vec<String>,
    /// For every benchmark, the index into `selected` of its
    /// representative.
    pub assignment: Vec<usize>,
    /// Maximum Euclidean distance (in PCA space) to a representative.
    pub max_distance: f64,
}

/// Greedy k-center selection over benchmark PCA coordinates.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the benchmark count.
pub fn pca_subset(model: &PcaModel, data: &Dataset, k: usize) -> PcaSubset {
    let (names, coords) = model.benchmark_coordinates(data);
    let n = names.len();
    assert!(k >= 1 && k <= n, "k = {k} out of range (n = {n})");
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    // Seed with the benchmark closest to the overall centroid.
    let centroid: Vec<f64> = (0..model.n_components())
        .map(|c| coords.iter().map(|p| p[c]).sum::<f64>() / n as f64)
        .collect();
    let seed = (0..n)
        .min_by(|&a, &b| dist(&coords[a], &centroid).total_cmp(&dist(&coords[b], &centroid)))
        .expect("non-empty");
    let mut selected = vec![seed];
    while selected.len() < k {
        let next = (0..n)
            .filter(|i| !selected.contains(i))
            .max_by(|&a, &b| {
                let da = selected
                    .iter()
                    .map(|&s| dist(&coords[a], &coords[s]))
                    .fold(f64::INFINITY, f64::min);
                let db = selected
                    .iter()
                    .map(|&s| dist(&coords[b], &coords[s]))
                    .fold(f64::INFINITY, f64::min);
                da.total_cmp(&db)
            })
            .expect("candidates remain");
        selected.push(next);
    }
    let mut assignment = Vec::with_capacity(n);
    let mut max_distance: f64 = 0.0;
    for p in &coords {
        let (best, d) = selected
            .iter()
            .enumerate()
            .map(|(idx, &s)| (idx, dist(p, &coords[s])))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("k >= 1");
        assignment.push(best);
        max_distance = max_distance.max(d);
    }
    PcaSubset {
        selected: selected.iter().map(|&i| names[i].clone()).collect(),
        assignment,
        max_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two benchmark groups separated along two different events.
    fn grouped_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ds = Dataset::new();
        for g in 0..2 {
            for b in 0..3 {
                let label = ds.add_benchmark(&format!("g{g}b{b}"));
                for _ in 0..200 {
                    let mut s = Sample::zeros(1.0);
                    // Shared noise dimension.
                    s.set(EventId::Load, 0.3 + 0.02 * rng.gen::<f64>());
                    // Group signature dimensions.
                    if g == 0 {
                        s.set(EventId::DtlbMiss, 1e-3 + 1e-4 * rng.gen::<f64>());
                    } else {
                        s.set(EventId::LdBlkOlp, 1e-2 + 1e-3 * rng.gen::<f64>());
                    }
                    ds.push(s, label);
                }
            }
        }
        ds
    }

    #[test]
    fn explained_variance_sums_below_one_and_sorted() {
        let ds = grouped_dataset();
        let pca = PcaModel::fit(&ds, 5);
        let ratios = pca.explained_variance_ratio();
        assert_eq!(ratios.len(), 5);
        let total: f64 = ratios.iter().sum();
        assert!(total <= 1.0 + 1e-9);
        for w in ratios.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "ratios not sorted: {ratios:?}");
        }
        // The two signature dimensions dominate.
        assert!(ratios[0] > 0.1);
    }

    #[test]
    fn first_component_separates_groups() {
        let ds = grouped_dataset();
        let pca = PcaModel::fit(&ds, 2);
        let (names, coords) = pca.benchmark_coordinates(&ds);
        // Groups must be separable in the retained space: within-group
        // spread should be far below between-group distance.
        let g0: Vec<&Vec<f64>> = names
            .iter()
            .zip(&coords)
            .filter(|(n, _)| n.starts_with("g0"))
            .map(|(_, c)| c)
            .collect();
        let g1: Vec<&Vec<f64>> = names
            .iter()
            .zip(&coords)
            .filter(|(n, _)| n.starts_with("g1"))
            .map(|(_, c)| c)
            .collect();
        let dist = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let within = dist(g0[0], g0[1]).max(dist(g1[0], g1[1]));
        let between = dist(g0[0], g1[0]);
        assert!(between > 5.0 * within, "between {between}, within {within}");
    }

    #[test]
    fn projection_of_mean_sample_is_origin() {
        let ds = grouped_dataset();
        let pca = PcaModel::fit(&ds, 3);
        // Build the mean sample explicitly.
        let mut mean = Sample::zeros(0.0);
        for e in EventId::ALL {
            let col = ds.column(e);
            mean.set(e, col.iter().sum::<f64>() / col.len() as f64);
        }
        let p = pca.project(&mean);
        assert!(p.iter().all(|v| v.abs() < 1e-9), "{p:?}");
    }

    #[test]
    fn pca_subset_covers_groups() {
        let ds = grouped_dataset();
        let pca = PcaModel::fit(&ds, 3);
        let subset = pca_subset(&pca, &ds, 2);
        let has0 = subset.selected.iter().any(|n| n.starts_with("g0"));
        let has1 = subset.selected.iter().any(|n| n.starts_with("g1"));
        assert!(has0 && has1, "{:?}", subset.selected);
        assert_eq!(subset.assignment.len(), 6);
    }

    #[test]
    fn loadings_identify_signature_events() {
        let ds = grouped_dataset();
        let pca = PcaModel::fit(&ds, 1);
        // The first component should load on the two group-signature
        // events much more than on an unused event.
        let sig = pca
            .loading(0, EventId::DtlbMiss)
            .abs()
            .max(pca.loading(0, EventId::LdBlkOlp).abs());
        let unused = pca.loading(0, EventId::FpAsst).abs();
        assert!(sig > 5.0 * unused, "sig {sig}, unused {unused}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_components_panics() {
        let ds = grouped_dataset();
        let _ = PcaModel::fit(&ds, 0);
    }
}
