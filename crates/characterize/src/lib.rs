//! Benchmark characterization through a fitted model tree.
//!
//! Once a model tree is constructed, "it can be used to characterize
//! other sets of sample data ... by classifying each sample based on the
//! split points in the tree. When all samples are classified, a profile
//! results, showing a distribution of the samples over the linear
//! models" (paper, Section IV-B). This crate implements that pipeline:
//!
//! * [`profile`] — [`profile::LeafProfile`]s per benchmark
//!   plus the suite-weighted and unweighted-average rows of Tables II
//!   and IV.
//! * [`similarity`] — the L1 (Manhattan) benchmark distance of
//!   Equation 4 and the full pairwise matrix of Table III.
//! * [`subset`] — the benchmark-subsetting application motivated by the
//!   paper's related-work section: k-means over profile vectors and a
//!   greedy max-coverage selector that picks representative benchmarks.
//! * [`pca`] — the related-work comparator: PCA over standardized event
//!   densities with k-center selection in the component space.
//! * [`timeline`] — temporal analysis of behavior-class sequences from
//!   time-ordered traces (runs, transitions, phase purity).
//!
//! # Examples
//!
//! ```
//! use characterize::profile::ProfileTable;
//! use modeltree::{M5Config, ModelTree};
//! use perfcounters::{Dataset, EventId, Sample};
//!
//! let mut ds = Dataset::new();
//! let a = ds.add_benchmark("a");
//! let b = ds.add_benchmark("b");
//! for i in 0..200 {
//!     let (label, v, cpi) = if i % 2 == 0 { (a, 0.1, 0.5) } else { (b, 0.9, 2.0) };
//!     let mut s = Sample::zeros(cpi);
//!     s.set(EventId::Store, v);
//!     ds.push(s, label);
//! }
//! let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
//! let table = ProfileTable::build(&tree, &ds);
//! // The two benchmarks occupy different leaves almost entirely.
//! let d = table.profile("a").unwrap().l1_distance(table.profile("b").unwrap());
//! assert!(d > 0.9);
//! ```

pub mod pca;
pub mod profile;
pub mod similarity;
pub mod subset;
pub mod timeline;

pub use pca::{pca_subset, PcaModel, PcaSubset};
pub use profile::{LeafProfile, ProfileTable};
pub use similarity::SimilarityMatrix;
pub use subset::{greedy_subset, kmeans_subset, SubsetResult};
pub use timeline::ClassTimeline;
