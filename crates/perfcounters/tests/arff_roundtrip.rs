//! ARFF round-trip and malformed-input rejection tests.
//!
//! `to_arff` prints floats with Rust's shortest-roundtrip formatting, so
//! reading back what was written must reproduce every cell **bit
//! exactly** — asserted here across proptest-generated datasets. The
//! rejection half feeds truncated headers, wrong-arity rows, and
//! non-numeric cells to `from_arff` and requires an `Err` (never a
//! panic).

use perfcounters::arff::{from_arff, to_arff};
use perfcounters::{Dataset, EventId, Sample};
use proptest::prelude::*;

const LABELS: [&str; 4] = ["429.mcf", "444.namd", "310.wupwise_m", "suite with space"];

/// Builds a dataset from generated rows: a label index plus three event
/// densities and a CPI.
fn dataset_from_rows(rows: &[(usize, f64, f64, f64, f64)]) -> Dataset {
    let mut ds = Dataset::new();
    let labels: Vec<_> = LABELS.iter().map(|n| ds.add_benchmark(n)).collect();
    for &(which, dtlb, load, l2, cpi) in rows {
        let mut s = Sample::zeros(cpi);
        s.set(EventId::DtlbMiss, dtlb);
        s.set(EventId::Load, load);
        s.set(EventId::L2Miss, l2);
        ds.push(s, labels[which % LABELS.len()]);
    }
    ds
}

fn row_strategy() -> impl Strategy<Value = (usize, f64, f64, f64, f64)> {
    (
        0usize..LABELS.len(),
        0.0f64..1e-3,
        0.0f64..0.5,
        0.0f64..2e-3,
        0.1f64..5.0,
    )
}

fn arff_text(ds: &Dataset) -> String {
    let mut buf = Vec::new();
    to_arff(ds, "prop_rel", &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_is_bit_exact(
        rows in proptest::collection::vec(row_strategy(), 1..60),
    ) {
        let ds = dataset_from_rows(&rows);
        let back = from_arff(arff_text(&ds).as_bytes()).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        for i in 0..ds.len() {
            prop_assert_eq!(back.sample(i).cpi().to_bits(), ds.sample(i).cpi().to_bits());
            for e in EventId::ALL {
                prop_assert_eq!(
                    back.sample(i).get(e).to_bits(),
                    ds.sample(i).get(e).to_bits()
                );
            }
            prop_assert_eq!(
                back.benchmark_name(back.label(i)).unwrap(),
                ds.benchmark_name(ds.label(i)).unwrap()
            );
        }
    }

    #[test]
    fn truncated_header_rejected(
        rows in proptest::collection::vec(row_strategy(), 2..20),
        cut_frac in 0.05f64..0.95,
    ) {
        // Cut the text anywhere inside the header: parsing must fail
        // (no @DATA section or broken attribute layout), never panic.
        let text = arff_text(&dataset_from_rows(&rows));
        let header_end = text.find("@DATA").unwrap();
        let cut = ((header_end as f64) * cut_frac) as usize;
        let truncated: String = text
            .char_indices()
            .take_while(|&(i, _)| i < cut)
            .map(|(_, c)| c)
            .collect();
        prop_assert!(from_arff(truncated.as_bytes()).is_err());
    }

    #[test]
    fn wrong_arity_rows_rejected(
        rows in proptest::collection::vec(row_strategy(), 2..20),
        extra in 0usize..3,
    ) {
        // Append a data row with the wrong number of fields (both too
        // few and too many).
        let mut text = arff_text(&dataset_from_rows(&rows));
        let n_fields = 3 + extra; // always != N_EVENTS + 2 = 21
        let bad_row = vec!["1.0"; n_fields].join(",");
        text.push_str(&bad_row);
        text.push('\n');
        prop_assert!(from_arff(text.as_bytes()).is_err());
    }

    #[test]
    fn non_numeric_cells_rejected(
        rows in proptest::collection::vec(row_strategy(), 2..20),
        col in 1usize..21,
    ) {
        // Corrupt one numeric cell of the first data row.
        let text = arff_text(&dataset_from_rows(&rows));
        let data_start = text.find("@DATA").unwrap();
        let row_start = data_start + text[data_start..].find('\n').unwrap() + 1;
        let row_end = row_start + text[row_start..].find('\n').unwrap();
        let mut fields: Vec<String> =
            text[row_start..row_end].split(',').map(str::to_owned).collect();
        fields[col] = "not_a_number".to_owned();
        let corrupted = format!(
            "{}{}{}",
            &text[..row_start],
            fields.join(","),
            &text[row_end..]
        );
        prop_assert!(from_arff(corrupted.as_bytes()).is_err());
    }
}

#[test]
fn reordered_attributes_rejected() {
    // Swap two attribute lines: the layout check must refuse the file.
    let ds = dataset_from_rows(&[(0, 1e-4, 0.2, 1e-4, 1.0), (1, 2e-4, 0.3, 2e-4, 1.5)]);
    let text = arff_text(&ds);
    let lines: Vec<&str> = text.lines().collect();
    let mut swapped: Vec<&str> = lines.clone();
    let attrs: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("@ATTRIBUTE") && !l.contains("benchmark"))
        .map(|(i, _)| i)
        .collect();
    swapped.swap(attrs[0], attrs[1]);
    assert!(from_arff(swapped.join("\n").as_bytes()).is_err());
}

#[test]
fn stray_line_before_data_rejected() {
    let ds = dataset_from_rows(&[(0, 1e-4, 0.2, 1e-4, 1.0)]);
    let text = arff_text(&ds).replace("@DATA", "stray header junk\n@DATA");
    assert!(from_arff(text.as_bytes()).is_err());
}

#[test]
fn comma_names_rejected_typed_not_sanitized() {
    // `to_arff` used to rewrite "a,b" to "a_b", so write-then-read
    // returned a different dataset. The writer now refuses with a
    // typed error instead of corrupting the name table.
    let mut ds = Dataset::new();
    let l = ds.add_benchmark("suite, with comma");
    ds.push(Sample::zeros(1.0), l);
    let mut buf = Vec::new();
    assert!(to_arff(&ds, "rel", &mut buf).is_err());
    assert!(buf.is_empty());
}

#[test]
fn non_finite_cells_roundtrip_too() {
    // ARFF is a transport format: NaN/inf cells survive the round trip
    // verbatim (rejecting them is the trainer's job, not the parser's).
    let mut ds = Dataset::new();
    let b = ds.add_benchmark("weird");
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0] {
        let mut s = Sample::zeros(1.0);
        s.set(EventId::Load, v);
        ds.push(s, b);
    }
    let back = from_arff(arff_text(&ds).as_bytes()).unwrap();
    assert_eq!(back.len(), 4);
    for i in 0..4 {
        assert_eq!(
            back.sample(i).get(EventId::Load).to_bits(),
            ds.sample(i).get(EventId::Load).to_bits()
        );
    }
}
