//! Robustness: the CSV and ARFF parsers must reject arbitrary garbage
//! with an error — never panic — and round-trip what they accept.

use perfcounters::arff::{from_arff, to_arff};
use perfcounters::{Dataset, EventId, Sample};
use proptest::prelude::*;

proptest! {
    #[test]
    fn csv_parser_never_panics(input in ".{0,400}") {
        // Any outcome is fine except a panic.
        let _ = Dataset::from_csv(input.as_bytes());
    }

    #[test]
    fn arff_parser_never_panics(input in ".{0,400}") {
        let _ = from_arff(input.as_bytes());
    }

    #[test]
    fn csv_with_valid_header_and_garbage_rows(rows in proptest::collection::vec("[a-z0-9,.\\-]{0,60}", 0..10)) {
        // Construct a valid header, then arbitrary junk rows: must never
        // panic, and must error unless every row happens to be valid.
        let mut ds = Dataset::new();
        let l = ds.add_benchmark("x");
        ds.push(Sample::zeros(1.0), l);
        let mut buf = Vec::new();
        ds.to_csv(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        for row in &rows {
            text.push_str(row);
            text.push('\n');
        }
        let _ = Dataset::from_csv(text.as_bytes());
    }

    #[test]
    fn csv_roundtrip_arbitrary_values(
        cpi in 0.0f64..10.0,
        dtlb in 0.0f64..1.0,
        simd in 0.0f64..1.0,
        name in "[A-Za-z0-9._]{1,20}",
    ) {
        let mut ds = Dataset::new();
        let l = ds.add_benchmark(&name);
        let mut s = Sample::zeros(cpi);
        s.set(EventId::DtlbMiss, dtlb);
        s.set(EventId::Simd, simd);
        ds.push(s, l);
        let mut buf = Vec::new();
        ds.to_csv(&mut buf).unwrap();
        let back = Dataset::from_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert!((back.sample(0).cpi() - cpi).abs() < 1e-12);
        prop_assert!((back.sample(0).get(EventId::DtlbMiss) - dtlb).abs() < 1e-12);
        prop_assert_eq!(back.benchmark_name(0), Some(name.as_str()));
    }

    #[test]
    fn arff_roundtrip_arbitrary_values(
        cpi in 0.0f64..10.0,
        load in 0.0f64..1.0,
        name in "[A-Za-z0-9._]{1,20}",
    ) {
        let mut ds = Dataset::new();
        let l = ds.add_benchmark(&name);
        let mut s = Sample::zeros(cpi);
        s.set(EventId::Load, load);
        ds.push(s, l);
        let mut buf = Vec::new();
        to_arff(&ds, "prop", &mut buf).unwrap();
        let back = from_arff(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert!((back.sample(0).cpi() - cpi).abs() < 1e-12);
        prop_assert!((back.sample(0).get(EventId::Load) - load).abs() < 1e-12);
    }
}
