//! Counter-bank behavior across non-default configurations.

use perfcounters::counters::{CounterBank, CounterConfig};
use perfcounters::{EventId, Sample};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn truth() -> Sample {
    let mut s = Sample::zeros(1.0);
    s.set(EventId::L2Miss, 3e-4);
    s.set(EventId::Load, 0.3);
    s
}

fn measured_sd(bank: &CounterBank, event: EventId, n: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = truth();
    let xs: Vec<f64> = (0..n)
        .map(|_| bank.measure(&t, &mut rng).get(event))
        .collect();
    mathkit::describe::std_dev(&xs).unwrap()
}

#[test]
fn fewer_programmable_counters_mean_more_noise() {
    // With 1 programmable counter each event is observed for half the
    // window it gets with 2 counters: noise grows by ~sqrt(2).
    let two = CounterBank::new(CounterConfig {
        programmable_counters: 2,
        ..Default::default()
    });
    let one = CounterBank::new(CounterConfig {
        programmable_counters: 1,
        ..Default::default()
    });
    assert_eq!(two.rotation_slots(), 10);
    assert_eq!(one.rotation_slots(), 19);
    let sd_two = measured_sd(&two, EventId::L2Miss, 4000, 1);
    let sd_one = measured_sd(&one, EventId::L2Miss, 4000, 2);
    let ratio = sd_one / sd_two;
    assert!(
        (1.2..1.6).contains(&ratio),
        "noise ratio {ratio}, expected ~sqrt(19/10) = 1.38"
    );
}

#[test]
fn longer_intervals_mean_less_noise() {
    let short = CounterBank::new(CounterConfig {
        interval_instructions: 500_000,
        ..Default::default()
    });
    let long = CounterBank::new(CounterConfig {
        interval_instructions: 8_000_000,
        ..Default::default()
    });
    let sd_short = measured_sd(&short, EventId::L2Miss, 4000, 3);
    let sd_long = measured_sd(&long, EventId::L2Miss, 4000, 4);
    // 16x more instructions -> 4x less relative noise.
    let ratio = sd_short / sd_long;
    assert!((3.0..5.5).contains(&ratio), "ratio {ratio}, expected ~4");
}

#[test]
fn five_counter_paper_configuration() {
    let bank = CounterBank::default();
    assert_eq!(bank.config().interval_instructions, 2_000_000);
    assert_eq!(bank.config().programmable_counters, 2);
    // Each event observed for 200k instructions.
    assert_eq!(bank.observation_window(), 200_000);
}

#[test]
fn degenerate_single_slot_window() {
    // Tiny interval: window clamps to at least 1 instruction.
    let bank = CounterBank::new(CounterConfig {
        interval_instructions: 3,
        ..Default::default()
    });
    assert!(bank.observation_window() >= 1);
    let mut rng = StdRng::seed_from_u64(5);
    let m = bank.measure(&truth(), &mut rng);
    assert!(m.is_physical());
}

#[test]
fn relative_error_prediction_matches_interval_scaling() {
    let short = CounterBank::new(CounterConfig {
        interval_instructions: 1_000_000,
        ..Default::default()
    });
    let long = CounterBank::new(CounterConfig {
        interval_instructions: 4_000_000,
        ..Default::default()
    });
    let p = 1e-4;
    let r = short.relative_std_err(p) / long.relative_std_err(p);
    assert!((r - 2.0).abs() < 1e-9, "predicted ratio {r}");
}
