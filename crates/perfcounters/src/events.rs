//! The Table I metric schema.
//!
//! The paper predicts CPI (cycles per instruction, from the fixed
//! counters) as a function of 19 per-instruction event densities collected
//! on the two programmable counters. [`EventId`] enumerates those
//! predictor events; the dependent variable CPI is kept separate by the
//! [`Sample`](crate::sample::Sample) type.

use serde::{Deserialize, Serialize};

/// Number of predictor events (Table I minus the CPI row).
pub const N_EVENTS: usize = 19;

/// A predictor event from Table I of the paper, expressed per retired
/// instruction.
///
/// The enum order matches the paper's Table I ordering and is stable: it
/// defines the column layout of [`Dataset`](crate::dataset::Dataset) and
/// the attribute indices reported by the model tree.
///
/// # Examples
///
/// ```
/// use perfcounters::events::EventId;
///
/// assert_eq!(EventId::DtlbMiss.short_name(), "DtlbMiss");
/// assert_eq!(EventId::ALL.len(), perfcounters::events::N_EVENTS);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(usize)]
pub enum EventId {
    /// Retired load instructions (`INST_RETIRED.LOADS`).
    Load = 0,
    /// Retired store instructions (`INST_RETIRED.STORES`).
    Store,
    /// Mispredicted retired branches (`BR_INST_RETIRED.MISPRED`).
    MisprBr,
    /// Retired branches of any kind (`BR_INST_RETIRED.ANY`).
    Br,
    /// L1 data-cache load misses (`MEM_LOAD_RETIRED.L1D_MISS`).
    L1DMiss,
    /// L1 instruction-cache misses (`L1I_MISSES`).
    L1IMiss,
    /// L2 cache load misses (`MEM_LOAD_RETIRED.L2_MISS`).
    L2Miss,
    /// Last-level DTLB misses (`DTLB_MISSES.ANY`).
    DtlbMiss,
    /// Loads blocked by an unresolved store address (`LOAD_BLOCK.STA`).
    LdBlkStA,
    /// Loads blocked waiting for store data (`LOAD_BLOCK.STD`).
    LdBlkStd,
    /// Loads blocked by a partially overlapping store
    /// (`LOAD_BLOCK.OVERLAP_STORE`).
    LdBlkOlp,
    /// L1D loads split across cache lines (`L1D_SPLIT.LOADS`).
    SplitLoad,
    /// L1D stores split across cache lines (`L1D_SPLIT.STORES`).
    SplitStore,
    /// Misaligned memory references (`MISALIGN_MEM_REF`).
    Misalign,
    /// Divide operations (`DIV`).
    Div,
    /// Hardware page walks (`PAGE_WALKS.COUNT`).
    PageWalk,
    /// Multiply operations (`MUL`).
    Mul,
    /// Floating-point assists (`FP_ASSIST`).
    FpAsst,
    /// Retired streaming SIMD instructions (`SIMD_INST_RETIRED.ANY`).
    Simd,
}

impl EventId {
    /// All predictor events in column order.
    pub const ALL: [EventId; N_EVENTS] = [
        EventId::Load,
        EventId::Store,
        EventId::MisprBr,
        EventId::Br,
        EventId::L1DMiss,
        EventId::L1IMiss,
        EventId::L2Miss,
        EventId::DtlbMiss,
        EventId::LdBlkStA,
        EventId::LdBlkStd,
        EventId::LdBlkOlp,
        EventId::SplitLoad,
        EventId::SplitStore,
        EventId::Misalign,
        EventId::Div,
        EventId::PageWalk,
        EventId::Mul,
        EventId::FpAsst,
        EventId::Simd,
    ];

    /// Column index of this event in datasets and model-tree attributes.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Event at a given column index.
    ///
    /// Returns `None` if `index >= N_EVENTS`.
    pub fn from_index(index: usize) -> Option<EventId> {
        EventId::ALL.get(index).copied()
    }

    /// The short name used throughout the paper's equations (e.g.
    /// `"DtlbMiss"`, `"LdBlkOlp"`).
    pub fn short_name(self) -> &'static str {
        match self {
            EventId::Load => "Load",
            EventId::Store => "Store",
            EventId::MisprBr => "MisprBr",
            EventId::Br => "Br",
            EventId::L1DMiss => "L1DMiss",
            EventId::L1IMiss => "L1IMiss",
            EventId::L2Miss => "L2Miss",
            EventId::DtlbMiss => "DtlbMiss",
            EventId::LdBlkStA => "LdBlkStA",
            EventId::LdBlkStd => "LdBlkStd",
            EventId::LdBlkOlp => "LdBlkOlp",
            EventId::SplitLoad => "SplitLoad",
            EventId::SplitStore => "SplitStore",
            EventId::Misalign => "Misalign",
            EventId::Div => "Div",
            EventId::PageWalk => "PageWalk",
            EventId::Mul => "Mul",
            EventId::FpAsst => "FpAsst",
            EventId::Simd => "SIMD",
        }
    }

    /// The underlying PMU event name, as listed in Table I.
    pub fn pmu_event_name(self) -> &'static str {
        match self {
            EventId::Load => "INST_RETIRED.LOADS",
            EventId::Store => "INST_RETIRED.STORES",
            EventId::MisprBr => "BR_INST_RETIRED.MISPRED",
            EventId::Br => "BR_INST_RETIRED.ANY",
            EventId::L1DMiss => "MEM_LOAD_RETIRED.L1D_MISS",
            EventId::L1IMiss => "L1I_MISSES",
            EventId::L2Miss => "MEM_LOAD_RETIRED.L2_MISS",
            EventId::DtlbMiss => "DTLB_MISSES.ANY",
            EventId::LdBlkStA => "LOAD_BLOCK.STA",
            EventId::LdBlkStd => "LOAD_BLOCK.STD",
            EventId::LdBlkOlp => "LOAD_BLOCK.OVERLAP_STORE",
            EventId::SplitLoad => "L1D_SPLIT.LOADS",
            EventId::SplitStore => "L1D_SPLIT.STORES",
            EventId::Misalign => "MISALIGN_MEM_REF",
            EventId::Div => "DIV",
            EventId::PageWalk => "PAGE_WALKS.COUNT",
            EventId::Mul => "MUL",
            EventId::FpAsst => "FP_ASSIST",
            EventId::Simd => "SIMD_INST_RETIRED.ANY",
        }
    }

    /// Human-readable description (Table I's rightmost column).
    pub fn description(self) -> &'static str {
        match self {
            EventId::Load => "loads per instruction",
            EventId::Store => "stores per instruction",
            EventId::MisprBr => "mispredicted branches per instruction",
            EventId::Br => "branches per instruction",
            EventId::L1DMiss => "L1 data misses per instruction",
            EventId::L1IMiss => "L1 instruction misses per instruction",
            EventId::L2Miss => "L2 misses per instruction",
            EventId::DtlbMiss => "last-level DTLB misses per instruction",
            EventId::LdBlkStA => "load blocks due to store-address events per instruction",
            EventId::LdBlkStd => "load blocks due to store-data events per instruction",
            EventId::LdBlkOlp => "load blocks due to overlapping stores per instruction",
            EventId::SplitLoad => "L1 data splits on loads per instruction",
            EventId::SplitStore => "L1 data splits on stores per instruction",
            EventId::Misalign => "misaligned memory references per instruction",
            EventId::Div => "divide operations per instruction",
            EventId::PageWalk => "page walks per instruction",
            EventId::Mul => "multiply operations per instruction",
            EventId::FpAsst => "floating point assists per instruction",
            EventId::Simd => "retired streaming SIMD instructions per instruction",
        }
    }

    /// Parses a short name (as produced by [`EventId::short_name`]) back
    /// into an event.
    ///
    /// Returns `None` for unknown names. Matching is case-sensitive to
    /// stay faithful to the paper's spellings.
    pub fn from_short_name(name: &str) -> Option<EventId> {
        EventId::ALL
            .iter()
            .copied()
            .find(|e| e.short_name() == name)
    }
}

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Names of the three fixed-function counters of the measured machine.
pub const FIXED_COUNTERS: [&str; 3] = [
    "CPU_CLK_UNHALTED.CORE",
    "INST_RETIRED.ANY",
    "CPU_CLK_UNHALTED.REF",
];

/// Number of programmable counters multiplexed over [`EventId::ALL`].
pub const N_PROGRAMMABLE_COUNTERS: usize = 2;

/// The multiplexing interval (sample width) in instructions: 2 million, as
/// in the paper's Section III.
pub const INTERVAL_INSTRUCTIONS: u64 = 2_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_unique_indices_covering_range() {
        let mut seen = [false; N_EVENTS];
        for e in EventId::ALL {
            assert!(!seen[e.index()], "duplicate index {}", e.index());
            seen[e.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn from_index_roundtrip() {
        for e in EventId::ALL {
            assert_eq!(EventId::from_index(e.index()), Some(e));
        }
        assert_eq!(EventId::from_index(N_EVENTS), None);
    }

    #[test]
    fn short_name_roundtrip() {
        for e in EventId::ALL {
            assert_eq!(EventId::from_short_name(e.short_name()), Some(e));
        }
        assert_eq!(EventId::from_short_name("NotAnEvent"), None);
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = EventId::ALL.iter().map(|e| e.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_EVENTS);
        for e in EventId::ALL {
            assert!(!e.pmu_event_name().is_empty());
            assert!(!e.description().is_empty());
        }
    }

    #[test]
    fn display_matches_short_name() {
        assert_eq!(format!("{}", EventId::LdBlkOlp), "LdBlkOlp");
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&EventId::DtlbMiss).unwrap();
        let back: EventId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, EventId::DtlbMiss);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(INTERVAL_INSTRUCTIONS, 2_000_000);
        assert_eq!(N_PROGRAMMABLE_COUNTERS, 2);
        assert_eq!(FIXED_COUNTERS.len(), 3);
    }
}
