//! ARFF import/export.
//!
//! The paper ran M5' inside WEKA, whose native dataset format is ARFF
//! (Attribute-Relation File Format). These routines write a
//! [`Dataset`] as an ARFF relation (one numeric attribute per Table I
//! event plus the CPI target and a nominal benchmark attribute) and read
//! it back, so datasets generated here can be cross-checked against a
//! real WEKA installation.

use crate::dataset::Dataset;
use crate::events::{EventId, N_EVENTS};
use crate::sample::Sample;
use crate::{DataError, Result};
use std::io::{BufRead, Write};

/// Writes the dataset as an ARFF relation named `relation`.
///
/// Layout: a nominal `benchmark` attribute, one numeric attribute per
/// Table I event (short names), and the numeric class attribute `CPI`
/// last — the position WEKA's regression schemes default to.
///
/// # Errors
///
/// Returns [`DataError::Unencodable`] — before writing anything — when
/// a benchmark name or the relation name contains a comma or line
/// break (historically commas were silently rewritten to `_`, which
/// made the round-trip return a different dataset than was written);
/// propagates I/O errors from the writer.
pub fn to_arff<W: Write>(data: &Dataset, relation: &str, mut w: W) -> Result<()> {
    data.check_encodable_names("arff")?;
    if relation.contains(['\n', '\r']) {
        return Err(DataError::Unencodable(format!(
            "relation name {relation:?} contains a line break"
        )));
    }
    writeln!(w, "@RELATION {relation}")?;
    writeln!(w)?;
    let names = data.benchmark_names();
    writeln!(w, "@ATTRIBUTE benchmark {{{}}}", names.join(","))?;
    for e in EventId::ALL {
        writeln!(w, "@ATTRIBUTE {} NUMERIC", e.short_name())?;
    }
    writeln!(w, "@ATTRIBUTE CPI NUMERIC")?;
    writeln!(w)?;
    writeln!(w, "@DATA")?;
    for (s, label) in data.iter() {
        write!(w, "{}", names[label as usize])?;
        for e in EventId::ALL {
            write!(w, ",{}", s.get(e))?;
        }
        writeln!(w, ",{}", s.cpi())?;
    }
    Ok(())
}

/// Reads a dataset from ARFF text produced by [`to_arff`].
///
/// The parser handles the subset of ARFF that [`to_arff`] emits (plus
/// comments and blank lines); it is not a general ARFF reader.
///
/// # Errors
///
/// Returns [`DataError::Parse`] for missing/reordered attributes, rows
/// with the wrong field count, or unparsable numbers.
pub fn from_arff<R: BufRead>(r: R) -> Result<Dataset> {
    let mut ds = Dataset::new();
    let mut attributes: Vec<String> = Vec::new();
    let mut in_data = false;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let lower = trimmed.to_ascii_lowercase();
        if lower.starts_with("@relation") {
            continue;
        }
        if lower.starts_with("@attribute") {
            let rest = trimmed["@attribute".len()..].trim();
            let name = rest.split_whitespace().next().ok_or_else(|| {
                DataError::Parse(format!("line {}: attribute without a name", lineno + 1))
            })?;
            attributes.push(name.to_owned());
            continue;
        }
        if lower.starts_with("@data") {
            // Validate the schema before accepting rows.
            let expected: Vec<String> = std::iter::once("benchmark".to_owned())
                .chain(EventId::ALL.iter().map(|e| e.short_name().to_owned()))
                .chain(std::iter::once("CPI".to_owned()))
                .collect();
            if attributes != expected {
                return Err(DataError::Parse(format!(
                    "unexpected attribute layout: {attributes:?}"
                )));
            }
            in_data = true;
            continue;
        }
        if !in_data {
            return Err(DataError::Parse(format!(
                "line {}: unexpected header line {trimmed:?}",
                lineno + 1
            )));
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != N_EVENTS + 2 {
            return Err(DataError::Parse(format!(
                "line {}: expected {} fields, got {}",
                lineno + 1,
                N_EVENTS + 2,
                fields.len()
            )));
        }
        let label = ds.add_benchmark(fields[0]);
        let parse = |s: &str| -> Result<f64> {
            s.parse::<f64>()
                .map_err(|e| DataError::Parse(format!("line {}: {e}", lineno + 1)))
        };
        let cpi = parse(fields[N_EVENTS + 1])?;
        let mut sample = Sample::zeros(cpi);
        for (e, field) in EventId::ALL.iter().zip(&fields[1..=N_EVENTS]) {
            sample.set(*e, parse(field)?);
        }
        ds.push(sample, label);
    }
    if !in_data {
        return Err(DataError::Parse("no @DATA section".into()));
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let a = ds.add_benchmark("429.mcf");
        let b = ds.add_benchmark("444.namd");
        for i in 0..6 {
            let mut s = Sample::zeros(1.0 + i as f64 * 0.25);
            s.set(EventId::DtlbMiss, i as f64 * 1e-4);
            s.set(EventId::Load, 0.3);
            ds.push(s, if i % 2 == 0 { a } else { b });
        }
        ds
    }

    #[test]
    fn roundtrip() {
        let ds = tiny_dataset();
        let mut buf = Vec::new();
        to_arff(&ds, "spec_cpu2006", &mut buf).unwrap();
        let back = from_arff(buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        for i in 0..ds.len() {
            assert!((back.sample(i).cpi() - ds.sample(i).cpi()).abs() < 1e-12);
            assert_eq!(
                back.benchmark_name(back.label(i)),
                ds.benchmark_name(ds.label(i))
            );
            for e in EventId::ALL {
                assert!((back.sample(i).get(e) - ds.sample(i).get(e)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn header_structure() {
        let ds = tiny_dataset();
        let mut buf = Vec::new();
        to_arff(&ds, "rel", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("@RELATION rel"));
        assert!(text.contains("@ATTRIBUTE benchmark {429.mcf,444.namd}"));
        assert!(text.contains("@ATTRIBUTE DtlbMiss NUMERIC"));
        assert!(text.contains("@ATTRIBUTE CPI NUMERIC"));
        assert!(text.contains("@DATA"));
        // CPI is the last attribute (WEKA's default class position).
        let attr_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("@ATTRIBUTE"))
            .collect();
        assert!(attr_lines.last().unwrap().contains("CPI"));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let ds = tiny_dataset();
        let mut buf = Vec::new();
        to_arff(&ds, "rel", &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text = format!("% generated for WEKA\n\n{text}");
        let back = from_arff(text.as_bytes()).unwrap();
        assert_eq!(back.len(), ds.len());
    }

    #[test]
    fn rejects_unencodable_names_instead_of_rewriting() {
        // Historically "a,b" became "a_b" on write, so the round-trip
        // silently returned a different dataset. Now it is a typed
        // error before any bytes land.
        let mut ds = Dataset::new();
        let l = ds.add_benchmark("a,b");
        ds.push(Sample::zeros(1.0), l);
        let mut buf = Vec::new();
        let err = to_arff(&ds, "rel", &mut buf).unwrap_err();
        assert!(matches!(err, DataError::Unencodable(_)), "{err}");
        assert!(buf.is_empty());
        assert!(to_arff(&tiny_dataset(), "evil\nrelation", &mut Vec::new()).is_err());
    }

    #[test]
    fn empty_dataset_roundtrip() {
        let mut buf = Vec::new();
        to_arff(&Dataset::new(), "empty", &mut buf).unwrap();
        let back = from_arff(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_arff("".as_bytes()).is_err()); // no @DATA
        assert!(from_arff("@DATA\n1,2\n".as_bytes()).is_err()); // bad schema
        let bad_attr = "@RELATION x\n@ATTRIBUTE wrong NUMERIC\n@DATA\n";
        assert!(from_arff(bad_attr.as_bytes()).is_err());
        // Wrong field count in a data row.
        let ds = tiny_dataset();
        let mut buf = Vec::new();
        to_arff(&ds, "rel", &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("too,few,fields\n");
        assert!(from_arff(text.as_bytes()).is_err());
    }
}
