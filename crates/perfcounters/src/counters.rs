//! The counter-multiplexing simulator.
//!
//! The measured machine has five hardware counters: three fixed ones
//! dedicated to `CPU_CLK_UNHALTED.CORE`, `INST_RETIRED.ANY` and
//! `CPU_CLK_UNHALTED.REF`, and two programmable counters that are
//! round-robin multiplexed over the 19 Table I events within each
//! 2-million-instruction interval. Each event is therefore *observed* for
//! only `2 / 19` of the interval and its count extrapolated to the full
//! interval — which is exactly the sampling noise this module simulates.
//!
//! CPI itself comes from the fixed counters, so it is measured over the
//! full interval without multiplexing error.

use crate::events::{EventId, INTERVAL_INSTRUCTIONS, N_EVENTS, N_PROGRAMMABLE_COUNTERS};
use crate::sample::Sample;
use mathkit::sampling::standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated counter bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterConfig {
    /// Instructions per observation interval (sample width). The paper
    /// uses 2 million.
    pub interval_instructions: u64,
    /// Number of programmable counters shared by the multiplexed events.
    pub programmable_counters: usize,
    /// If false, the bank reports true densities exactly (an "oracle" PMU
    /// useful for testing and ablation).
    pub multiplexing_noise: bool,
}

impl Default for CounterConfig {
    fn default() -> Self {
        CounterConfig {
            interval_instructions: INTERVAL_INSTRUCTIONS,
            programmable_counters: N_PROGRAMMABLE_COUNTERS,
            multiplexing_noise: true,
        }
    }
}

/// A simulated five-counter PMU.
///
/// # Examples
///
/// ```
/// use perfcounters::{CounterBank, EventId, Sample};
/// use rand::SeedableRng;
///
/// let bank = CounterBank::new(Default::default());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let mut truth = Sample::zeros(1.0);
/// truth.set(EventId::Load, 0.3);
/// let measured = bank.measure(&truth, &mut rng);
/// // The measured density is near, but generally not equal to, the truth.
/// assert!((measured.get(EventId::Load) - 0.3).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterBank {
    config: CounterConfig,
}

impl CounterBank {
    /// Creates a counter bank with the given configuration.
    pub fn new(config: CounterConfig) -> Self {
        CounterBank { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CounterConfig {
        &self.config
    }

    /// Instructions over which each multiplexed event is actually
    /// observed within one interval.
    pub fn observation_window(&self) -> u64 {
        let slots = self.rotation_slots();
        (self.config.interval_instructions / slots as u64).max(1)
    }

    /// Number of round-robin rotation slots needed to cover all events
    /// with the available programmable counters.
    pub fn rotation_slots(&self) -> usize {
        N_EVENTS.div_ceil(self.config.programmable_counters.max(1))
    }

    /// Measures one interval: given the *true* per-instruction densities,
    /// produces the densities the multiplexed PMU would report.
    ///
    /// Each event's observed count over its sub-window is modeled as a
    /// binomial draw (normal approximation), then extrapolated to the full
    /// interval. CPI passes through unchanged (fixed counters).
    pub fn measure<R: Rng + ?Sized>(&self, truth: &Sample, rng: &mut R) -> Sample {
        obskit::metrics::incr(obskit::metrics::Metric::PmuIntervals);
        if !self.config.multiplexing_noise {
            return truth.clone();
        }
        obskit::metrics::add(
            obskit::metrics::Metric::PmuRotations,
            self.rotation_slots() as u64,
        );
        let window = self.observation_window() as f64;
        let mut measured = Sample::zeros(truth.cpi());
        for e in EventId::ALL {
            let p = truth.get(e).max(0.0);
            // Normal approximation to Binomial(window, p); for the rare
            // events here p is tiny so the variance is ~window * p.
            let expectation = window * p;
            let sd = (window * p * (1.0 - p.min(1.0))).max(0.0).sqrt();
            let count = (expectation + sd * standard_normal(rng)).max(0.0);
            measured.set(e, count / window);
        }
        measured
    }

    /// Measures a batch of true samples, returning the measured samples in
    /// the same order.
    pub fn measure_all<R: Rng + ?Sized>(&self, truths: &[Sample], rng: &mut R) -> Vec<Sample> {
        truths.iter().map(|t| self.measure(t, rng)).collect()
    }

    /// The relative standard error of a measured density for an event with
    /// true per-instruction density `p` — useful for sizing expected
    /// multiplexing noise in tests and documentation.
    pub fn relative_std_err(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return 0.0;
        }
        let window = self.observation_window() as f64;
        ((1.0 - p.min(1.0)) / (window * p)).sqrt()
    }
}

impl Default for CounterBank {
    fn default() -> Self {
        CounterBank::new(CounterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rotation_slots_cover_all_events() {
        let bank = CounterBank::default();
        assert_eq!(bank.rotation_slots(), 10); // ceil(19 / 2)
        assert!(bank.observation_window() >= 1);
        assert_eq!(bank.observation_window(), 2_000_000 / 10);
    }

    #[test]
    fn oracle_mode_is_exact() {
        let bank = CounterBank::new(CounterConfig {
            multiplexing_noise: false,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let mut truth = Sample::zeros(1.3);
        truth.set(EventId::L2Miss, 4.2e-4);
        let m = bank.measure(&truth, &mut rng);
        assert_eq!(m, truth);
    }

    #[test]
    fn cpi_passes_through_unchanged() {
        let bank = CounterBank::default();
        let mut rng = StdRng::seed_from_u64(1);
        let truth = Sample::zeros(1.7);
        assert_eq!(bank.measure(&truth, &mut rng).cpi(), 1.7);
    }

    #[test]
    fn measurement_is_unbiased() {
        let bank = CounterBank::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut truth = Sample::zeros(1.0);
        truth.set(EventId::DtlbMiss, 2e-4);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| bank.measure(&truth, &mut rng).get(EventId::DtlbMiss))
            .sum::<f64>()
            / n as f64;
        let rel_err = (mean - 2e-4).abs() / 2e-4;
        assert!(rel_err < 0.01, "relative bias {rel_err}");
    }

    #[test]
    fn noise_scale_matches_prediction() {
        let bank = CounterBank::default();
        let mut rng = StdRng::seed_from_u64(3);
        let p = 1e-4;
        let mut truth = Sample::zeros(1.0);
        truth.set(EventId::L2Miss, p);
        let n = 10_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| bank.measure(&truth, &mut rng).get(EventId::L2Miss))
            .collect();
        let sd = mathkit::describe::std_dev(&xs).unwrap();
        let predicted = bank.relative_std_err(p) * p;
        assert!(
            (sd - predicted).abs() / predicted < 0.1,
            "sd {sd} vs predicted {predicted}"
        );
    }

    #[test]
    fn measured_densities_nonnegative() {
        let bank = CounterBank::default();
        let mut rng = StdRng::seed_from_u64(4);
        // Density so small the normal approximation would often dip
        // negative without clamping.
        let mut truth = Sample::zeros(1.0);
        truth.set(EventId::FpAsst, 1e-9);
        for _ in 0..1000 {
            let m = bank.measure(&truth, &mut rng);
            assert!(m.get(EventId::FpAsst) >= 0.0);
        }
    }

    #[test]
    fn measure_all_preserves_order_and_len() {
        let bank = CounterBank::default();
        let mut rng = StdRng::seed_from_u64(5);
        let truths: Vec<Sample> = (0..7).map(|i| Sample::zeros(i as f64)).collect();
        let measured = bank.measure_all(&truths, &mut rng);
        assert_eq!(measured.len(), 7);
        for (i, m) in measured.iter().enumerate() {
            assert_eq!(m.cpi(), i as f64);
        }
    }

    #[test]
    fn degenerate_configs_never_panic() {
        // Zero-interval and zero-counter configurations come straight
        // out of fuzzing the streaming generator's config surface; the
        // bank must clamp, not divide by zero.
        let mut rng = StdRng::seed_from_u64(6);
        let mut truth = Sample::zeros(1.1);
        truth.set(EventId::Load, 0.3);
        for (interval, counters) in [(0u64, 0usize), (0, 2), (2_000_000, 0), (1, 1)] {
            let bank = CounterBank::new(CounterConfig {
                interval_instructions: interval,
                programmable_counters: counters,
                multiplexing_noise: true,
            });
            assert!(bank.observation_window() >= 1);
            assert!(bank.rotation_slots() >= 1);
            let m = bank.measure(&truth, &mut rng);
            assert_eq!(m.cpi(), 1.1);
            assert!(m.get(EventId::Load) >= 0.0);
            assert!(bank.relative_std_err(0.3).is_finite());
        }
    }

    #[test]
    fn relative_std_err_monotone_in_density() {
        let bank = CounterBank::default();
        assert!(bank.relative_std_err(1e-6) > bank.relative_std_err(1e-3));
        assert_eq!(bank.relative_std_err(0.0), 0.0);
    }
}
