//! Labeled collections of samples with splits, summaries, and I/O.

use crate::events::{EventId, N_EVENTS};
use crate::sample::Sample;
use crate::{DataError, Result};
use mathkit::describe::Summary;
use mathkit::matrix::Matrix;
use mathkit::sampling::permutation;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::sync::OnceLock;

/// Column-major copy of a dataset's numeric content, built lazily and
/// cached on the owning [`Dataset`].
///
/// Training-time inner loops (split search, node-model fitting) walk one
/// event at a time across many samples; the row-major `Vec<Sample>`
/// layout makes that a strided scatter. The column store keeps each
/// event's densities — and the CPI target — as one contiguous `&[f64]`
/// slice, so hot loops touch memory sequentially and never allocate.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStore {
    /// Sample count (the length of every column).
    n: usize,
    /// All event columns, concatenated: column `e` occupies
    /// `e.index() * n .. (e.index() + 1) * n`.
    events: Vec<f64>,
    /// The CPI (dependent-variable) column.
    cpi: Vec<f64>,
}

impl ColumnStore {
    fn build(samples: &[Sample]) -> ColumnStore {
        let n = samples.len();
        let mut events = vec![0.0; N_EVENTS * n];
        let mut cpi = Vec::with_capacity(n);
        for (i, s) in samples.iter().enumerate() {
            cpi.push(s.cpi());
            for (e, &v) in s.densities().iter().enumerate() {
                events[e * n + i] = v;
            }
        }
        ColumnStore { n, events, cpi }
    }

    /// The contiguous density column for one event.
    pub fn event(&self, event: EventId) -> &[f64] {
        &self.events[event.index() * self.n..(event.index() + 1) * self.n]
    }

    /// The contiguous CPI column.
    pub fn cpi(&self) -> &[f64] {
        &self.cpi
    }

    /// Number of samples (length of every column).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the store holds no samples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// A labeled dataset of observation intervals.
///
/// Every sample carries a benchmark label (an index into the dataset's
/// benchmark name table), mirroring how the paper attributes each
/// 2M-instruction interval to the benchmark that produced it. The label
/// table makes per-benchmark profiling (Tables II and IV) and
/// instruction-count weighting possible.
///
/// # Examples
///
/// ```
/// use perfcounters::{Dataset, Sample};
///
/// let mut ds = Dataset::new();
/// let mcf = ds.add_benchmark("429.mcf");
/// ds.push(Sample::zeros(2.5), mcf);
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds.benchmark_name(mcf), Some("429.mcf"));
/// ```
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
    labels: Vec<u32>,
    benchmarks: Vec<String>,
    /// Lazily built columnar view (see [`ColumnStore`]). Purely derived
    /// data: never serialized, never compared, dropped on clone, and
    /// reset by every mutation.
    #[serde(skip)]
    columns: OnceLock<ColumnStore>,
}

// The column cache is derived state: two datasets are equal iff their
// samples, labels, and benchmark tables are, regardless of which of them
// has materialized its columns.
impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
            && self.labels == other.labels
            && self.benchmarks == other.benchmarks
    }
}

impl Clone for Dataset {
    fn clone(&self) -> Self {
        Dataset {
            samples: self.samples.clone(),
            labels: self.labels.clone(),
            benchmarks: self.benchmarks.clone(),
            columns: OnceLock::new(),
        }
    }
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Creates an empty dataset with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Dataset {
            samples: Vec::with_capacity(n),
            labels: Vec::with_capacity(n),
            benchmarks: Vec::new(),
            columns: OnceLock::new(),
        }
    }

    /// Rebuilds a dataset from raw parts: one sample per label (indexes
    /// into `benchmarks`), exactly as observable through
    /// [`Dataset::sample`], [`Dataset::label`], and
    /// [`Dataset::benchmark_names`]. This is the constructor binary
    /// deserializers use to reproduce a dataset bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Parse`] when `samples` and `labels` differ in
    /// length, a label points past the name table, or the name table
    /// contains a duplicate (which [`Dataset::add_benchmark`] could never
    /// produce).
    pub fn from_parts(
        samples: Vec<Sample>,
        labels: Vec<u32>,
        benchmarks: Vec<String>,
    ) -> Result<Dataset> {
        if samples.len() != labels.len() {
            return Err(DataError::Parse(format!(
                "{} samples but {} labels",
                samples.len(),
                labels.len()
            )));
        }
        for (i, name) in benchmarks.iter().enumerate() {
            if benchmarks[..i].contains(name) {
                return Err(DataError::Parse(format!("duplicate benchmark {name:?}")));
            }
        }
        if let Some(bad) = labels.iter().find(|&&l| l as usize >= benchmarks.len()) {
            return Err(DataError::Parse(format!(
                "label {bad} out of range ({} benchmarks)",
                benchmarks.len()
            )));
        }
        Ok(Dataset {
            samples,
            labels,
            benchmarks,
            columns: OnceLock::new(),
        })
    }

    /// Drops the cached columnar view; called by every mutation.
    fn invalidate_columns(&mut self) {
        self.columns = OnceLock::new();
    }

    /// The columnar view of this dataset, built on first use and cached
    /// until the next mutation. Costs one pass over the samples (and
    /// `20 * len` doubles of memory) the first time; free afterwards.
    pub fn columns(&self) -> &ColumnStore {
        self.columns
            .get_or_init(|| ColumnStore::build(&self.samples))
    }

    /// Borrow of one event's contiguous density column.
    pub fn event_column(&self, event: EventId) -> &[f64] {
        self.columns().event(event)
    }

    /// Borrow of the contiguous CPI column.
    pub fn cpi_column(&self) -> &[f64] {
        self.columns().cpi()
    }

    /// Registers a benchmark name, returning its label id. If the name is
    /// already registered, the existing id is returned.
    pub fn add_benchmark(&mut self, name: &str) -> u32 {
        if let Some(pos) = self.benchmarks.iter().position(|b| b == name) {
            return pos as u32;
        }
        self.benchmarks.push(name.to_owned());
        (self.benchmarks.len() - 1) as u32
    }

    /// Appends a sample with the given benchmark label.
    ///
    /// # Panics
    ///
    /// Panics if `label` does not refer to a registered benchmark.
    pub fn push(&mut self, sample: Sample, label: u32) {
        assert!(
            (label as usize) < self.benchmarks.len(),
            "label {label} not registered ({} benchmarks)",
            self.benchmarks.len()
        );
        self.invalidate_columns();
        self.samples.push(sample);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> &Sample {
        &self.samples[i]
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// Name of a benchmark label, or `None` if unregistered.
    pub fn benchmark_name(&self, label: u32) -> Option<&str> {
        self.benchmarks.get(label as usize).map(String::as_str)
    }

    /// All registered benchmark names, in label order.
    pub fn benchmark_names(&self) -> &[String] {
        &self.benchmarks
    }

    /// Number of registered benchmarks.
    pub fn benchmark_count(&self) -> usize {
        self.benchmarks.len()
    }

    /// Iterator over `(sample, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Sample, u32)> + '_ {
        self.samples.iter().zip(self.labels.iter().copied())
    }

    /// The dependent-variable vector (CPI of each sample). Thin copying
    /// wrapper over [`Dataset::cpi_column`].
    pub fn cpis(&self) -> Vec<f64> {
        self.cpi_column().to_vec()
    }

    /// The density column for one event. Thin copying wrapper over
    /// [`Dataset::event_column`].
    pub fn column(&self, event: EventId) -> Vec<f64> {
        self.event_column(event).to_vec()
    }

    /// The `n x N_EVENTS` feature matrix (no intercept column), filled
    /// from the columnar view.
    pub fn feature_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.len(), N_EVENTS);
        let cols = self.columns();
        for e in EventId::ALL {
            for (r, &v) in cols.event(e).iter().enumerate() {
                m[(r, e.index())] = v;
            }
        }
        m
    }

    /// Summary statistics of one event column.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InsufficientData`] if the dataset is empty.
    pub fn summary(&self, event: EventId) -> Result<Summary> {
        Summary::from_slice(&self.column(event))
            .map_err(|_| DataError::InsufficientData("summary of empty dataset".into()))
    }

    /// Summary statistics of the CPI column.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InsufficientData`] if the dataset is empty.
    pub fn cpi_summary(&self) -> Result<Summary> {
        Summary::from_slice(&self.cpis())
            .map_err(|_| DataError::InsufficientData("summary of empty dataset".into()))
    }

    /// Splits the dataset into two disjoint random subsets: the first with
    /// `ceil(fraction * len)` samples and the second with the remainder.
    /// Both keep the full benchmark name table, so labels stay valid.
    ///
    /// This is the sampling used in the paper's Section VI ("a training
    /// set representing 10% of the data" and an independent 10% test set).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn split_random<R: Rng + ?Sized>(&self, rng: &mut R, fraction: f64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction {fraction} outside [0, 1]"
        );
        let n_first = (fraction * self.len() as f64).ceil() as usize;
        let order = permutation(rng, self.len());
        let mut first = Dataset {
            samples: Vec::with_capacity(n_first),
            labels: Vec::with_capacity(n_first),
            benchmarks: self.benchmarks.clone(),
            columns: OnceLock::new(),
        };
        let mut second = Dataset {
            samples: Vec::with_capacity(self.len().saturating_sub(n_first)),
            labels: Vec::with_capacity(self.len().saturating_sub(n_first)),
            benchmarks: self.benchmarks.clone(),
            columns: OnceLock::new(),
        };
        for (rank, &idx) in order.iter().enumerate() {
            let target = if rank < n_first {
                &mut first
            } else {
                &mut second
            };
            target.samples.push(self.samples[idx].clone());
            target.labels.push(self.labels[idx]);
        }
        (first, second)
    }

    /// Returns the subset of samples belonging to one benchmark (the name
    /// table is preserved).
    pub fn filter_benchmark(&self, label: u32) -> Dataset {
        let mut out = Dataset {
            samples: Vec::new(),
            labels: Vec::new(),
            benchmarks: self.benchmarks.clone(),
            columns: OnceLock::new(),
        };
        for (s, l) in self.iter() {
            if l == label {
                out.samples.push(s.clone());
                out.labels.push(l);
            }
        }
        out
    }

    /// Appends all samples of `other`, remapping labels through benchmark
    /// names so datasets from different generators can be combined.
    pub fn merge(&mut self, other: &Dataset) {
        self.invalidate_columns();
        let remap: Vec<u32> = other
            .benchmarks
            .iter()
            .map(|name| self.add_benchmark(name))
            .collect();
        for (s, l) in other.iter() {
            self.samples.push(s.clone());
            self.labels.push(remap[l as usize]);
        }
    }

    /// Checks that every registered benchmark name survives a
    /// delimiter-separated text format: commas or line breaks in a name
    /// would shift fields or split rows, silently corrupting the file
    /// in a way only discovered (at best) on re-read.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Unencodable`] naming the offending
    /// benchmark.
    pub(crate) fn check_encodable_names(&self, format: &str) -> Result<()> {
        for name in &self.benchmarks {
            if name.contains([',', '\n', '\r']) {
                return Err(DataError::Unencodable(format!(
                    "benchmark name {name:?} contains a delimiter and cannot be written as {format}"
                )));
            }
        }
        Ok(())
    }

    /// Writes the dataset as CSV: a header row, then one row per sample
    /// (`benchmark,cpi,<event columns>`).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Unencodable`] — before writing anything —
    /// when a benchmark name contains a comma or line break; propagates
    /// I/O errors from the writer.
    pub fn to_csv<W: Write>(&self, mut w: W) -> Result<()> {
        self.check_encodable_names("csv")?;
        write!(w, "benchmark,CPI")?;
        for e in EventId::ALL {
            write!(w, ",{}", e.short_name())?;
        }
        writeln!(w)?;
        for (s, l) in self.iter() {
            let name = self.benchmark_name(l).unwrap_or("?");
            write!(w, "{name},{}", s.cpi())?;
            for e in EventId::ALL {
                write!(w, ",{}", s.get(e))?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Reads a dataset from CSV previously produced by [`Dataset::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Parse`] on malformed headers, rows with the
    /// wrong number of fields, or unparsable numbers; [`DataError::Io`] on
    /// reader failures.
    pub fn from_csv<R: BufRead>(r: R) -> Result<Dataset> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| DataError::Parse("empty csv".into()))??;
        let expected_fields = 2 + N_EVENTS;
        if header.split(',').count() != expected_fields {
            return Err(DataError::Parse(format!(
                "expected {expected_fields} header fields, got {}",
                header.split(',').count()
            )));
        }
        let mut ds = Dataset::new();
        for (lineno, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != expected_fields {
                return Err(DataError::Parse(format!(
                    "line {}: expected {expected_fields} fields, got {}",
                    lineno + 2,
                    fields.len()
                )));
            }
            let label = ds.add_benchmark(fields[0]);
            let parse = |s: &str| -> Result<f64> {
                s.parse::<f64>()
                    .map_err(|e| DataError::Parse(format!("line {}: {e}", lineno + 2)))
            };
            let cpi = parse(fields[1])?;
            let mut sample = Sample::zeros(cpi);
            for (e, field) in EventId::ALL.iter().zip(&fields[2..]) {
                sample.set(*e, parse(field)?);
            }
            ds.push(sample, label);
        }
        Ok(ds)
    }
}

impl Extend<(Sample, u32)> for Dataset {
    fn extend<T: IntoIterator<Item = (Sample, u32)>>(&mut self, iter: T) {
        for (s, l) in iter {
            self.push(s, l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let a = ds.add_benchmark("alpha");
        let b = ds.add_benchmark("beta");
        for i in 0..10 {
            let mut s = Sample::zeros(1.0 + i as f64 * 0.1);
            s.set(EventId::Load, 0.2 + i as f64 * 0.01);
            ds.push(s, if i % 2 == 0 { a } else { b });
        }
        ds
    }

    #[test]
    fn add_benchmark_dedupes() {
        let mut ds = Dataset::new();
        let a = ds.add_benchmark("x");
        let b = ds.add_benchmark("x");
        assert_eq!(a, b);
        assert_eq!(ds.benchmark_count(), 1);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn push_unregistered_label_panics() {
        let mut ds = Dataset::new();
        ds.push(Sample::zeros(1.0), 0);
    }

    #[test]
    fn from_parts_roundtrips_accessors() {
        let ds = tiny_dataset();
        let samples: Vec<Sample> = (0..ds.len()).map(|i| ds.sample(i).clone()).collect();
        let labels: Vec<u32> = (0..ds.len()).map(|i| ds.label(i)).collect();
        let names = ds.benchmark_names().to_vec();
        let back = Dataset::from_parts(samples, labels, names).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn from_parts_rejects_malformed() {
        let s = vec![Sample::zeros(1.0)];
        assert!(Dataset::from_parts(s.clone(), vec![], vec!["a".into()]).is_err());
        assert!(Dataset::from_parts(s.clone(), vec![1], vec!["a".into()]).is_err());
        assert!(Dataset::from_parts(s, vec![0], vec!["a".into(), "a".into()]).is_err());
        assert!(Dataset::from_parts(vec![], vec![], vec![]).is_ok());
    }

    #[test]
    fn columns_and_matrix() {
        let ds = tiny_dataset();
        let col = ds.column(EventId::Load);
        assert_eq!(col.len(), 10);
        assert!((col[3] - 0.23).abs() < 1e-12);
        let m = ds.feature_matrix();
        assert_eq!(m.shape(), (10, N_EVENTS));
        assert!((m[(3, EventId::Load.index())] - 0.23).abs() < 1e-12);
    }

    #[test]
    fn summaries() {
        let ds = tiny_dataset();
        let s = ds.cpi_summary().unwrap();
        assert_eq!(s.count(), 10);
        assert!((s.mean() - 1.45).abs() < 1e-12);
        assert!(Dataset::new().cpi_summary().is_err());
    }

    #[test]
    fn split_random_partitions() {
        let ds = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = ds.split_random(&mut rng, 0.3);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 7);
        // Same total CPI mass: it's a partition.
        let total: f64 = ds.cpis().iter().sum();
        let split_total: f64 = a.cpis().iter().chain(b.cpis().iter()).sum();
        assert!((total - split_total).abs() < 1e-9);
        // Name tables preserved.
        assert_eq!(a.benchmark_count(), 2);
        assert_eq!(b.benchmark_count(), 2);
    }

    #[test]
    fn split_random_extremes() {
        let ds = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b) = ds.split_random(&mut rng, 0.0);
        assert_eq!(a.len(), 0);
        assert_eq!(b.len(), 10);
        let (a, b) = ds.split_random(&mut rng, 1.0);
        assert_eq!(a.len(), 10);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn filter_benchmark_selects_only_matching() {
        let ds = tiny_dataset();
        let alpha = ds.filter_benchmark(0);
        assert_eq!(alpha.len(), 5);
        assert!(alpha.iter().all(|(_, l)| l == 0));
    }

    #[test]
    fn merge_remaps_labels() {
        let mut a = Dataset::new();
        let ax = a.add_benchmark("x");
        a.push(Sample::zeros(1.0), ax);

        let mut b = Dataset::new();
        let by = b.add_benchmark("y");
        let bx = b.add_benchmark("x");
        b.push(Sample::zeros(2.0), by);
        b.push(Sample::zeros(3.0), bx);

        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.benchmark_count(), 2);
        // The "x" sample from b must land on a's existing "x" label.
        assert_eq!(a.label(2), ax);
        assert_eq!(a.benchmark_name(a.label(1)), Some("y"));
    }

    #[test]
    fn csv_roundtrip() {
        let ds = tiny_dataset();
        let mut buf = Vec::new();
        ds.to_csv(&mut buf).unwrap();
        let back = Dataset::from_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        for i in 0..ds.len() {
            assert!((back.sample(i).cpi() - ds.sample(i).cpi()).abs() < 1e-12);
            assert_eq!(
                back.benchmark_name(back.label(i)),
                ds.benchmark_name(ds.label(i))
            );
        }
    }

    #[test]
    fn csv_rejects_malformed() {
        assert!(Dataset::from_csv("".as_bytes()).is_err());
        assert!(Dataset::from_csv("a,b,c\n".as_bytes()).is_err());
        let mut buf = Vec::new();
        tiny_dataset().to_csv(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("bad,row\n");
        assert!(Dataset::from_csv(text.as_bytes()).is_err());
    }

    #[test]
    fn csv_rejects_unencodable_names_before_writing() {
        let mut ds = Dataset::new();
        let l = ds.add_benchmark("bad,name");
        ds.push(Sample::zeros(1.0), l);
        let mut buf = Vec::new();
        let err = ds.to_csv(&mut buf).unwrap_err();
        assert!(matches!(err, DataError::Unencodable(_)), "{err}");
        assert!(buf.is_empty(), "refused write still produced bytes");

        let mut ds = Dataset::new();
        let l = ds.add_benchmark("line\nbreak");
        ds.push(Sample::zeros(1.0), l);
        assert!(ds.to_csv(&mut Vec::new()).is_err());
    }

    #[test]
    fn empty_dataset_csv_roundtrip() {
        let mut buf = Vec::new();
        Dataset::new().to_csv(&mut buf).unwrap();
        let back = Dataset::from_csv(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.benchmark_count(), 0);
    }

    #[test]
    fn extend_trait() {
        let mut ds = Dataset::new();
        let l = ds.add_benchmark("z");
        ds.extend((0..5).map(|i| (Sample::zeros(i as f64), l)));
        assert_eq!(ds.len(), 5);
    }

    #[test]
    fn columnar_view_matches_row_accessors() {
        let ds = tiny_dataset();
        let cols = ds.columns();
        assert_eq!(cols.len(), ds.len());
        assert!(!cols.is_empty());
        for e in EventId::ALL {
            let col = cols.event(e);
            assert_eq!(col.len(), ds.len());
            for (i, &value) in col.iter().enumerate() {
                assert_eq!(value, ds.sample(i).get(e));
            }
        }
        for i in 0..ds.len() {
            assert_eq!(cols.cpi()[i], ds.sample(i).cpi());
        }
        // The convenience wrappers observe the same data.
        assert_eq!(ds.column(EventId::Load), ds.event_column(EventId::Load));
        assert_eq!(ds.cpis(), ds.cpi_column());
    }

    #[test]
    fn columnar_view_invalidated_by_mutation() {
        let mut ds = tiny_dataset();
        assert_eq!(ds.cpi_column().len(), 10);
        let label = ds.add_benchmark("gamma");
        ds.push(Sample::zeros(9.0), label);
        assert_eq!(ds.cpi_column().len(), 11);
        assert_eq!(ds.cpi_column()[10], 9.0);

        let mut merged = tiny_dataset();
        assert_eq!(merged.event_column(EventId::Load).len(), 10);
        merged.merge(&ds);
        assert_eq!(merged.event_column(EventId::Load).len(), 21);
    }

    #[test]
    fn clone_and_equality_ignore_column_cache() {
        let ds = tiny_dataset();
        let _ = ds.columns();
        let copy = ds.clone();
        assert_eq!(copy, ds);
        // The clone rebuilds its own cache lazily and sees the same data.
        assert_eq!(copy.cpi_column(), ds.cpi_column());
    }

    #[test]
    fn empty_dataset_columns() {
        let ds = Dataset::new();
        assert!(ds.columns().is_empty());
        assert!(ds.cpi_column().is_empty());
        assert!(ds.event_column(EventId::Load).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let ds = tiny_dataset();
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.benchmark_names(), ds.benchmark_names());
        for i in 0..ds.len() {
            assert_eq!(back.label(i), ds.label(i));
            // JSON text may perturb the last ULP of a float.
            assert!((back.sample(i).cpi() - ds.sample(i).cpi()).abs() < 1e-12);
            for e in EventId::ALL {
                assert!((back.sample(i).get(e) - ds.sample(i).get(e)).abs() < 1e-12);
            }
        }
    }
}
