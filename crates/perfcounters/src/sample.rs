//! A single observation interval: per-instruction event densities plus the
//! measured CPI.

use crate::events::{EventId, N_EVENTS};
use serde::{Deserialize, Serialize};

/// One 2-million-instruction observation interval.
///
/// Densities are per-instruction values in `[0, ∞)` (instruction-mix
/// events like loads are bounded by 1; miss events are typically far
/// smaller). The dependent variable CPI is stored separately from the
/// predictors so a `Sample` can flow into the regression machinery without
/// index bookkeeping.
///
/// # Examples
///
/// ```
/// use perfcounters::{EventId, Sample};
///
/// let mut s = Sample::zeros(0.8);
/// s.set(EventId::Load, 0.3);
/// s.set(EventId::L2Miss, 2e-4);
/// assert_eq!(s.get(EventId::Load), 0.3);
/// assert_eq!(s.cpi(), 0.8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    cpi: f64,
    densities: [f64; N_EVENTS],
}

impl Sample {
    /// Creates a sample with the given CPI and all event densities zero.
    pub fn zeros(cpi: f64) -> Self {
        Sample {
            cpi,
            densities: [0.0; N_EVENTS],
        }
    }

    /// Creates a sample from a full density vector.
    ///
    /// # Panics
    ///
    /// Panics if `densities.len() != N_EVENTS`.
    pub fn from_densities(cpi: f64, densities: &[f64]) -> Self {
        assert_eq!(
            densities.len(),
            N_EVENTS,
            "expected {N_EVENTS} densities, got {}",
            densities.len()
        );
        let mut arr = [0.0; N_EVENTS];
        arr.copy_from_slice(densities);
        Sample {
            cpi,
            densities: arr,
        }
    }

    /// Measured cycles per instruction for this interval.
    pub fn cpi(&self) -> f64 {
        self.cpi
    }

    /// Overrides the CPI (used by the counter simulator after it adds
    /// measurement noise).
    pub fn set_cpi(&mut self, cpi: f64) {
        self.cpi = cpi;
    }

    /// Per-instruction density of one event.
    pub fn get(&self, event: EventId) -> f64 {
        self.densities[event.index()]
    }

    /// Sets the per-instruction density of one event.
    pub fn set(&mut self, event: EventId, density: f64) {
        self.densities[event.index()] = density;
    }

    /// Borrow of the full density vector, indexed by
    /// [`EventId::index`](crate::events::EventId::index).
    pub fn densities(&self) -> &[f64; N_EVENTS] {
        &self.densities
    }

    /// Mutable borrow of the full density vector.
    pub fn densities_mut(&mut self) -> &mut [f64; N_EVENTS] {
        &mut self.densities
    }

    /// True if every density and the CPI are finite and non-negative.
    pub fn is_physical(&self) -> bool {
        self.cpi.is_finite()
            && self.cpi >= 0.0
            && self.densities.iter().all(|d| d.is_finite() && *d >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_sample() {
        let s = Sample::zeros(1.5);
        assert_eq!(s.cpi(), 1.5);
        assert!(s.densities().iter().all(|&d| d == 0.0));
        assert!(s.is_physical());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut s = Sample::zeros(1.0);
        for (i, e) in EventId::ALL.iter().enumerate() {
            s.set(*e, i as f64 * 0.01);
        }
        for (i, e) in EventId::ALL.iter().enumerate() {
            assert_eq!(s.get(*e), i as f64 * 0.01);
        }
    }

    #[test]
    fn from_densities_roundtrip() {
        let d: Vec<f64> = (0..N_EVENTS).map(|i| i as f64).collect();
        let s = Sample::from_densities(2.0, &d);
        assert_eq!(s.densities().as_slice(), d.as_slice());
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn from_densities_wrong_len_panics() {
        Sample::from_densities(1.0, &[0.0; 3]);
    }

    #[test]
    fn physical_checks() {
        let mut s = Sample::zeros(1.0);
        assert!(s.is_physical());
        s.set(EventId::Load, -0.1);
        assert!(!s.is_physical());
        s.set(EventId::Load, f64::NAN);
        assert!(!s.is_physical());
        let mut s = Sample::zeros(f64::INFINITY);
        assert!(!s.is_physical());
        s.set_cpi(0.5);
        assert!(s.is_physical());
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = Sample::zeros(0.9);
        s.set(EventId::Simd, 0.42);
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    proptest! {
        #[test]
        fn prop_set_then_get(idx in 0usize..N_EVENTS, v in 0.0f64..1.0) {
            let mut s = Sample::zeros(1.0);
            let e = EventId::from_index(idx).unwrap();
            s.set(e, v);
            prop_assert_eq!(s.get(e), v);
            // Other events untouched.
            for other in EventId::ALL {
                if other != e {
                    prop_assert_eq!(s.get(other), 0.0);
                }
            }
        }
    }
}
