//! PMU event schema, sample datasets, and a counter-multiplexing simulator.
//!
//! This crate models the measurement infrastructure of the paper's
//! Section III: an Intel Core 2-class performance monitoring unit with
//! five counters — three fixed (`CPU_CLK_UNHALTED.CORE`,
//! `INST_RETIRED.ANY`, `CPU_CLK_UNHALTED.REF`) and two programmable
//! counters that are round-robin multiplexed over the remaining events of
//! Table I in 2-million-instruction intervals.
//!
//! * [`events`] — the Table I metric schema: [`events::EventId`]
//!   enumerates the 19 per-instruction predictor events; CPI is the
//!   dependent variable.
//! * [`sample`] — a single observation interval
//!   ([`sample::Sample`]) with its per-instruction event densities
//!   and measured CPI.
//! * [`dataset`] — a columnar [`dataset::Dataset`] of samples with
//!   benchmark labels, random splits, per-column summaries, and CSV /
//!   JSON round-trips.
//! * [`counters`] — the [`counters::CounterBank`] multiplexing
//!   simulator that turns *true* event densities into *measured* densities
//!   with realistic extrapolation noise.
//! * [`arff`] — WEKA ARFF import/export, for cross-checking datasets
//!   against the toolchain the paper used.
//!
//! # Examples
//!
//! ```
//! use perfcounters::events::EventId;
//! use perfcounters::sample::Sample;
//!
//! let mut sample = Sample::zeros(1.0);
//! sample.set(EventId::DtlbMiss, 3e-4);
//! assert_eq!(sample.get(EventId::DtlbMiss), 3e-4);
//! assert_eq!(sample.cpi(), 1.0);
//! ```

pub mod arff;
pub mod counters;
pub mod dataset;
pub mod events;
pub mod sample;

pub use counters::CounterBank;
pub use dataset::{ColumnStore, Dataset};
pub use events::EventId;
pub use sample::Sample;

/// Errors from dataset manipulation and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// A CSV or JSON payload could not be parsed. The payload describes
    /// the offending line or field.
    Parse(String),
    /// Indices or label references were out of range.
    OutOfRange(String),
    /// An operation needed more samples than the dataset holds.
    InsufficientData(String),
    /// A value cannot be represented in the requested text format
    /// (e.g. a benchmark name containing the format's delimiter).
    /// Raised at write time so the defect never reaches disk.
    Unencodable(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Parse(msg) => write!(f, "parse error: {msg}"),
            DataError::OutOfRange(msg) => write!(f, "out of range: {msg}"),
            DataError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            DataError::Unencodable(msg) => write!(f, "unencodable: {msg}"),
            DataError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let e = DataError::Parse("bad row".into());
        assert!(e.to_string().contains("bad row"));
        let e = DataError::Io(std::io::Error::other("x"));
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn error_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DataError>();
    }
}
