//! Fleet-scale streaming ingestion and out-of-core training.
//!
//! The batch pipeline ([`pipeline`]) materializes a whole dataset, fits
//! once, and caches the artifact. This crate is the continuous version
//! of that story: thousands of simulated hosts emit interval records
//! over bounded channels into a sharded aggregator that seals columnar
//! chunks into a `SPDC` container ([`pipeline::chunked`]), and a
//! sliding-window refit tracks workload drift against that container
//! without ever holding the full table in memory.
//!
//! # Determinism contract
//!
//! The sealed container is a pure function of [`StreamConfig`] — never
//! of arrival interleaving, thread scheduling, or injected faults:
//!
//! * Every interval record is a pure function of `(fleet seed, host,
//!   seq)` ([`StreamPlan::record`]), so a record can be retransmitted,
//!   deduplicated, or recomputed byte-identically at any time.
//! * Hosts are routed to `n_shards` **logical** shards (`host %
//!   n_shards`); shard count is part of the layout and participates in
//!   the output. `n_threads` is an execution hint only: shards are
//!   multiplexed over workers, and the testkit proves byte-identical
//!   containers on 1 and 8 threads.
//! * Within a shard, rows follow the canonical seq-major round-robin
//!   order over the shard's hosts (ascending id), skipping hosts past
//!   their final sequence. The aggregator reconstructs exactly this
//!   order from out-of-order arrivals using per-host sequence numbers —
//!   duplicates are dropped by frontier check, gaps stall the cursor
//!   until the retransmit lands (exactly-once chunk semantics).
//!
//! # Fault injection
//!
//! [`FaultConfig`] seeds a deterministic adversary: decisions (drop,
//! duplicate, reorder, mid-stream host death, torn chunk write) are
//! keyed by *content* — `(fault seed, host, seq)` or `(fault seed,
//! chunk index)` — never by arrival order, so the same seed produces
//! the same fault schedule on any thread count and the suite can
//! assert byte-identical output under fire.
//!
//! Everything is observable through `stream.*` obskit metrics (rows
//! ingested, chunks sealed, duplicates dropped, retransmits, backlog
//! gauge, refit latency).

#![warn(missing_docs)]

pub mod aggregator;
pub mod fault;
pub mod refit;
pub mod source;

pub use aggregator::{run_stream, StreamSummary};
pub use fault::FaultConfig;
pub use refit::{holdout_eval, windowed_refit, Holdout, RefitConfig, StreamError, WindowFit};
pub use source::{FleetConfig, StreamPlan};

/// Full configuration of one streaming run: the fleet, the logical
/// layout, the execution hints, and the fault schedule.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The simulated fleet (suite, host count, intervals, seed).
    pub fleet: FleetConfig,
    /// Logical shard count. Part of the container layout: different
    /// shard counts produce different (each internally deterministic)
    /// row orders.
    pub n_shards: usize,
    /// Worker threads for producers and aggregators. Execution hint:
    /// never affects output bytes.
    pub n_threads: usize,
    /// Rows per sealed chunk (the in-memory budget per shard).
    pub chunk_rows: usize,
    /// Bound of each worker's ingest channel, in envelopes.
    pub channel_capacity: usize,
    /// Deterministic fault schedule ([`FaultConfig::none`] to disable).
    pub faults: FaultConfig,
}

impl StreamConfig {
    /// A config with sane defaults around the given fleet.
    pub fn new(fleet: FleetConfig) -> Self {
        StreamConfig {
            fleet,
            n_shards: 4,
            n_threads: 1,
            chunk_rows: 1024,
            channel_capacity: 256,
            faults: FaultConfig::none(),
        }
    }

    /// Sets the logical shard count.
    #[must_use]
    pub fn with_shards(mut self, n: usize) -> Self {
        self.n_shards = n.max(1);
        self
    }

    /// Sets the worker thread count (execution hint).
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        self.n_threads = n.max(1);
        self
    }

    /// Sets the chunk row budget.
    #[must_use]
    pub fn with_chunk_rows(mut self, n: usize) -> Self {
        self.chunk_rows = n.max(1);
        self
    }

    /// Sets the fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }
}
