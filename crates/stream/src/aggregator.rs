//! Sharded, bounded-channel ingestion with deterministic chunk sealing.
//!
//! Producers walk their hosts and push [`Envelope`]s — interval records
//! tagged `(host, seq)` plus a reliable per-host `End` control record —
//! through the fault injector into bounded channels. Aggregator workers
//! own disjoint logical shards and reconstruct each shard's canonical
//! row order ([`crate::StreamPlan::shard_row_order`]) from whatever
//! interleaving arrives:
//!
//! * a record below the host's emitted frontier, or already pending, is
//!   a duplicate and is dropped (`stream.duplicates_dropped`);
//! * a gap (dropped delivery) stalls the shard's cursor; rows behind
//!   the gap wait in per-host reorder buffers (`stream.backlog_rows`
//!   gauge) until the retransmit lands;
//! * a host's `End` record carries its final sequence count, so
//!   mid-stream death just shortens that host's column of the
//!   round-robin.
//!
//! Every `chunk_rows` emitted rows the shard seals a chunk
//! ([`crate::source::encode_rows`]) and spills it to its own temp file,
//! so peak memory per shard is one building chunk regardless of stream
//! length. After the fleet drains, the spill sequences are streamed —
//! one body at a time — into a `SPDC` container through
//! [`pipeline::chunked::ChunkedWriter`], whose read-back verification
//! catches the injector's torn writes (`stream.chunk_recoveries`).
//!
//! The emitted container is byte-identical for any `n_threads` and any
//! fault schedule: exactly-once semantics by construction, proven by
//! the fault suite.

use crate::source::encode_rows;
use crate::{StreamConfig, StreamPlan};
use obskit::metrics::{self, Hist, Metric};
use perfcounters::Sample;
use pipeline::chunked::ChunkedWriter;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};

/// One message on the ingest plane.
#[derive(Debug, Clone)]
struct Envelope {
    host: u64,
    seq: u32,
    payload: Payload,
}

#[derive(Debug, Clone)]
enum Payload {
    /// A measured interval.
    Interval(Sample),
    /// Reliable end-of-host control record: the host emitted exactly
    /// `final_seq` intervals (less than planned when it died).
    End { final_seq: u32 },
}

/// Counters shared across workers, mirrored into obskit at the end.
#[derive(Default)]
struct SharedCounters {
    duplicates: AtomicU64,
    retransmits: AtomicU64,
    faults: AtomicU64,
    backlog: AtomicU64,
}

/// What one streaming run produced and observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSummary {
    /// Rows sealed into the container.
    pub rows: u64,
    /// Chunks sealed.
    pub chunks: u64,
    /// Duplicate deliveries suppressed by the frontier check.
    pub duplicates_dropped: u64,
    /// Dropped deliveries replayed from the pure source.
    pub retransmits: u64,
    /// Total injected transport faults (drops + dups + reorders).
    pub faults_injected: u64,
    /// Torn container writes detected by read-back and repaired.
    pub torn_writes_repaired: u64,
    /// Path of the sealed `SPDC` container.
    pub container: PathBuf,
}

/// Per-host reassembly state inside one shard.
struct HostSlot {
    host: u64,
    /// Out-of-order arrivals waiting for the cursor, keyed by seq.
    pending: BTreeMap<u32, Sample>,
    /// Next sequence this host's column of the round-robin will emit.
    emitted_next: u32,
    /// Final sequence count, known once `End` arrives.
    final_seq: Option<u32>,
}

/// One logical shard's assembler: canonical-order cursor plus the
/// building chunk and its spill file.
struct ShardState {
    hosts: Vec<HostSlot>,
    /// Round-robin cursor: current sequence and position in `hosts`.
    cursor_seq: u32,
    cursor_host: usize,
    /// Rows expected (sum of final seqs), accumulating as Ends arrive.
    rows_expected: u64,
    ends_seen: usize,
    rows_emitted: u64,
    /// Building chunk.
    row_samples: Vec<Sample>,
    row_labels: Vec<u32>,
    chunks_sealed: u64,
    spill: BufWriter<File>,
}

impl ShardState {
    fn new(plan: &StreamPlan, shard: usize, spill: File) -> Self {
        ShardState {
            hosts: plan
                .shard_hosts(shard)
                .iter()
                .map(|&host| HostSlot {
                    host,
                    pending: BTreeMap::new(),
                    emitted_next: 0,
                    final_seq: None,
                })
                .collect(),
            cursor_seq: 0,
            cursor_host: 0,
            rows_expected: 0,
            ends_seen: 0,
            rows_emitted: 0,
            row_samples: Vec::with_capacity(plan.chunk_rows()),
            row_labels: Vec::with_capacity(plan.chunk_rows()),
            chunks_sealed: 0,
            spill: BufWriter::new(spill),
        }
    }

    /// Position of `host` in the shard's ascending host list.
    fn slot_of(&self, host: u64) -> usize {
        self.hosts
            .binary_search_by_key(&host, |s| s.host)
            .expect("envelope routed to a shard that does not own its host")
    }

    fn done(&self) -> bool {
        self.ends_seen == self.hosts.len() && self.rows_emitted == self.rows_expected
    }

    /// Emits every row the canonical order allows so far, sealing full
    /// chunks into the spill file.
    fn advance(&mut self, plan: &StreamPlan, counters: &SharedCounters) -> std::io::Result<()> {
        while !self.done() && !self.hosts.is_empty() {
            let slot = &mut self.hosts[self.cursor_host];
            let exhausted = slot.final_seq.is_some_and(|f| self.cursor_seq >= f);
            if exhausted {
                self.step_cursor();
                continue;
            }
            let Some(sample) = slot.pending.remove(&self.cursor_seq) else {
                // Gap: either the record is still in flight (dropped,
                // reordered) or End has not told us the host is done.
                // Exactly-once means we stall rather than guess.
                break;
            };
            slot.emitted_next = self.cursor_seq + 1;
            let label = plan.host_label(slot.host);
            counters.backlog.fetch_sub(1, Ordering::Relaxed);
            self.row_samples.push(sample);
            self.row_labels.push(label);
            self.rows_emitted += 1;
            if self.row_samples.len() == plan.chunk_rows() {
                self.seal()?;
            }
            self.step_cursor();
        }
        Ok(())
    }

    fn step_cursor(&mut self) {
        self.cursor_host += 1;
        if self.cursor_host == self.hosts.len() {
            self.cursor_host = 0;
            self.cursor_seq += 1;
        }
    }

    /// Seals the building rows as one chunk: encode, spill, count.
    fn seal(&mut self) -> std::io::Result<()> {
        if self.row_samples.is_empty() {
            return Ok(());
        }
        let body = encode_rows(&self.row_samples, &self.row_labels);
        self.spill.write_all(&(body.len() as u64).to_le_bytes())?;
        self.spill.write_all(&body)?;
        metrics::incr(Metric::StreamChunksSealed);
        metrics::add(Metric::StreamRowsIngested, self.row_samples.len() as u64);
        metrics::observe(Hist::StreamChunkRows, self.row_samples.len() as u64);
        self.chunks_sealed += 1;
        self.row_samples.clear();
        self.row_labels.clear();
        Ok(())
    }

    /// Handles one envelope; returns `Ok(())` or the spill I/O error.
    fn receive(
        &mut self,
        env: Envelope,
        plan: &StreamPlan,
        counters: &SharedCounters,
    ) -> std::io::Result<()> {
        let slot_idx = self.slot_of(env.host);
        match env.payload {
            Payload::Interval(sample) => {
                let slot = &mut self.hosts[slot_idx];
                let duplicate =
                    env.seq < slot.emitted_next || slot.pending.insert(env.seq, sample).is_some();
                if duplicate {
                    // Re-inserted over an existing pending copy: the
                    // bytes are identical (records are pure), so the
                    // overwrite is harmless; only the count matters.
                    counters.duplicates.fetch_add(1, Ordering::Relaxed);
                    metrics::incr(Metric::StreamDuplicatesDropped);
                } else {
                    counters.backlog.fetch_add(1, Ordering::Relaxed);
                }
                metrics::gauge_set(
                    Metric::StreamBacklogRows,
                    counters.backlog.load(Ordering::Relaxed),
                );
            }
            Payload::End { final_seq } => {
                let slot = &mut self.hosts[slot_idx];
                assert!(slot.final_seq.is_none(), "host {} sent End twice", env.host);
                slot.final_seq = Some(final_seq);
                self.ends_seen += 1;
                self.rows_expected += u64::from(final_seq);
            }
        }
        self.advance(plan, counters)
    }
}

/// A producer's fault-injecting delivery stage: duplicates and reorders
/// happen here; drops are deferred into the retransmit queue.
struct Injector<'a> {
    cfg: &'a StreamConfig,
    txs: &'a [SyncSender<Envelope>],
    n_workers: usize,
    /// Envelopes held back by reorder faults, with remaining delay.
    delayed: Vec<(Envelope, usize)>,
    counters: &'a SharedCounters,
}

impl Injector<'_> {
    fn route(&self, host: u64) -> &SyncSender<Envelope> {
        let shard = (host % self.cfg.n_shards.max(1) as u64) as usize;
        &self.txs[shard % self.n_workers]
    }

    /// Sends now, counting one delivery tick against held envelopes.
    fn send_now(&mut self, env: Envelope) {
        self.route(env.host).send(env).expect("aggregator hung up");
        self.tick();
    }

    fn tick(&mut self) {
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].1 <= 1 {
                let (env, _) = self.delayed.swap_remove(i);
                self.route(env.host).send(env).expect("aggregator hung up");
            } else {
                self.delayed[i].1 -= 1;
                i += 1;
            }
        }
    }

    /// First-attempt delivery of an interval, through the fault roll.
    /// Returns `true` when the delivery was dropped (caller queues a
    /// retransmit).
    fn offer(&mut self, host: u64, seq: u32, sample: Sample) -> bool {
        let faults = &self.cfg.faults;
        if faults.drops(host, seq) {
            self.counters.faults.fetch_add(1, Ordering::Relaxed);
            metrics::incr(Metric::StreamFaultsInjected);
            self.tick();
            return true;
        }
        let env = Envelope {
            host,
            seq,
            payload: Payload::Interval(sample),
        };
        let delay = faults.delay(host, seq);
        if delay > 0 {
            self.counters.faults.fetch_add(1, Ordering::Relaxed);
            metrics::incr(Metric::StreamFaultsInjected);
            self.delayed.push((env.clone(), delay));
            self.tick();
        } else {
            self.send_now(env.clone());
        }
        if faults.duplicates(host, seq) {
            self.counters.faults.fetch_add(1, Ordering::Relaxed);
            metrics::incr(Metric::StreamFaultsInjected);
            self.send_now(env);
        }
        false
    }

    fn flush(&mut self) {
        while !self.delayed.is_empty() {
            self.tick();
        }
    }
}

/// Walks one producer's hosts, generating records from the pure source
/// and delivering them through the injector.
fn produce(
    worker: usize,
    n_workers: usize,
    plan: &StreamPlan,
    cfg: &StreamConfig,
    txs: &[SyncSender<Envelope>],
    counters: &SharedCounters,
) {
    let mut injector = Injector {
        cfg,
        txs,
        n_workers,
        delayed: Vec::new(),
        counters,
    };
    let mut host = worker as u64;
    while host < cfg.fleet.n_hosts {
        let produced = plan.produced(host);
        let mut retransmit = Vec::new();
        for seq in 0..produced {
            let sample = plan.record(host, seq);
            if injector.offer(host, seq, sample) {
                retransmit.push(seq);
            }
        }
        // Replay dropped deliveries from the pure source. Second
        // attempts bypass the fault roll: loss delays rows, it never
        // erases them.
        for seq in retransmit {
            counters.retransmits.fetch_add(1, Ordering::Relaxed);
            metrics::incr(Metric::StreamRetransmits);
            injector.send_now(Envelope {
                host,
                seq,
                payload: Payload::Interval(plan.record(host, seq)),
            });
        }
        injector.send_now(Envelope {
            host,
            seq: produced,
            payload: Payload::End {
                final_seq: produced,
            },
        });
        host += n_workers as u64;
    }
    injector.flush();
}

/// Drains one worker's channel into its owned shards, then completes
/// and seals every shard.
fn aggregate(
    worker: usize,
    n_workers: usize,
    plan: &StreamPlan,
    rx: &Receiver<Envelope>,
    spills: Vec<(usize, File)>,
    counters: &SharedCounters,
) -> std::io::Result<Vec<(usize, u64)>> {
    let mut shards: Vec<(usize, ShardState)> = spills
        .into_iter()
        .map(|(shard, file)| (shard, ShardState::new(plan, shard, file)))
        .collect();
    debug_assert!(shards.iter().all(|(s, _)| s % n_workers == worker));
    for env in rx {
        let shard = plan.shard_of(env.host);
        let state = shards
            .iter_mut()
            .find(|(s, _)| *s == shard)
            .map(|(_, st)| st)
            .expect("envelope routed to a worker that does not own its shard");
        state.receive(env, plan, counters)?;
    }
    let mut sealed = Vec::with_capacity(shards.len());
    for (shard, mut state) in shards {
        assert!(
            state.done(),
            "shard {shard} starved: {} of {} rows emitted with all producers gone",
            state.rows_emitted,
            state.rows_expected
        );
        state.seal()?; // final partial chunk
        state.spill.flush()?;
        sealed.push((shard, state.chunks_sealed));
    }
    Ok(sealed)
}

/// Runs the full streaming pipeline: fleet → fault injector → sharded
/// aggregation → spilled chunks → sealed `SPDC` container at `out`.
///
/// The container bytes depend only on `cfg`'s layout fields (fleet,
/// shards, chunk rows, fault seed) — never on `n_threads` or channel
/// capacity. See the crate docs for the contract.
///
/// # Errors
///
/// Propagates I/O failures from spill files and container assembly.
///
/// # Panics
///
/// Panics if a worker thread panics, or if the drained stream is
/// incomplete (a routing bug, not an injected fault — injected faults
/// are always recovered).
pub fn run_stream(cfg: &StreamConfig, out: &Path) -> std::io::Result<StreamSummary> {
    let plan = StreamPlan::new(cfg);
    run_planned(&plan, cfg, out)
}

/// [`run_stream`] against a pre-resolved plan (callers that also need
/// the plan for oracles or recompute avoid resolving it twice).
///
/// # Errors
///
/// See [`run_stream`].
pub fn run_planned(
    plan: &StreamPlan,
    cfg: &StreamConfig,
    out: &Path,
) -> std::io::Result<StreamSummary> {
    let n_workers = cfg.n_threads.max(1).min(cfg.n_shards.max(1));
    let counters = SharedCounters::default();
    // One spill file per shard, owned by the worker that owns the shard.
    let mut spill_paths = Vec::with_capacity(cfg.n_shards);
    let mut worker_spills: Vec<Vec<(usize, File)>> = (0..n_workers).map(|_| Vec::new()).collect();
    for shard in 0..cfg.n_shards.max(1) {
        let path = spill_path(out, shard);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        spill_paths.push(path);
        worker_spills[shard % n_workers].push((shard, file));
    }

    let mut chunk_counts = vec![0u64; cfg.n_shards.max(1)];
    let agg_results: Vec<std::io::Result<Vec<(usize, u64)>>> = std::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(n_workers);
        let mut consumers = Vec::with_capacity(n_workers);
        for (worker, worker_spill) in worker_spills.iter_mut().enumerate() {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Envelope>(cfg.channel_capacity.max(1));
            txs.push(tx);
            let spills = std::mem::take(worker_spill);
            let counters = &counters;
            consumers.push(
                scope.spawn(move || aggregate(worker, n_workers, plan, &rx, spills, counters)),
            );
        }
        let mut producers = Vec::with_capacity(n_workers);
        for worker in 0..n_workers {
            let txs = txs.clone();
            let counters = &counters;
            producers
                .push(scope.spawn(move || produce(worker, n_workers, plan, cfg, &txs, counters)));
        }
        drop(txs);
        for p in producers {
            p.join().expect("producer panicked");
        }
        consumers
            .into_iter()
            .map(|c| c.join().expect("aggregator panicked"))
            .collect()
    });
    for result in agg_results {
        for (shard, chunks) in result? {
            chunk_counts[shard] = chunks;
        }
    }

    // Stream the spilled bodies — one chunk in memory at a time — into
    // the container, letting the writer's read-back verification catch
    // the injector's torn writes.
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(out)?;
    let mut writer = ChunkedWriter::new(file, plan.benchmarks())?;
    let mut global_chunk = 0u64;
    let mut rows = 0u64;
    for (shard, spill) in spill_paths.iter().enumerate() {
        let mut src = BufReader::new(File::open(spill)?);
        src.rewind()?;
        for _ in 0..chunk_counts[shard] {
            let mut len = [0u8; 8];
            src.read_exact(&mut len)?;
            let mut body = vec![0u8; u64::from_le_bytes(len) as usize];
            src.read_exact(&mut body)?;
            let truncate = cfg.faults.truncates(global_chunk, body.len());
            if truncate.is_some() {
                counters.faults.fetch_add(1, Ordering::Relaxed);
                metrics::incr(Metric::StreamFaultsInjected);
            }
            rows += writer.append_chunk(&body, truncate)?.rows;
            global_chunk += 1;
        }
    }
    let torn_writes_repaired = writer.recoveries();
    let (total_rows, chunks) = writer.finish()?;
    debug_assert_eq!(rows, total_rows);
    for spill in &spill_paths {
        let _ = std::fs::remove_file(spill);
    }
    metrics::gauge_set(Metric::StreamBacklogRows, 0);

    Ok(StreamSummary {
        rows: total_rows,
        chunks: chunks.len() as u64,
        duplicates_dropped: counters.duplicates.load(Ordering::Relaxed),
        retransmits: counters.retransmits.load(Ordering::Relaxed),
        faults_injected: counters.faults.load(Ordering::Relaxed),
        torn_writes_repaired,
        container: out.to_path_buf(),
    })
}

fn spill_path(out: &Path, shard: usize) -> PathBuf {
    let mut name = out.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".spill{shard}"));
    out.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultConfig, FleetConfig};
    use pipeline::chunked::ChunkedReader;
    use std::io::Cursor;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "specrepro-stream-test-{tag}-{}.spdc",
            std::process::id()
        ))
    }

    fn run(cfg: &StreamConfig, tag: &str) -> (StreamSummary, Vec<u8>) {
        let path = tmp(tag);
        let summary = run_stream(cfg, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        (summary, bytes)
    }

    #[test]
    fn clean_stream_matches_naive_oracle() {
        let cfg = StreamConfig::new(FleetConfig::cpu2006(50, 6, 9))
            .with_shards(4)
            .with_chunk_rows(17);
        let plan = StreamPlan::new(&cfg);
        let (summary, bytes) = run(&cfg, "clean");
        assert_eq!(summary.rows, 300);
        assert_eq!(summary.duplicates_dropped, 0);
        assert_eq!(summary.faults_injected, 0);
        let mut reader = ChunkedReader::open(Cursor::new(bytes)).unwrap();
        let got = reader.window_dataset(0..300).unwrap();
        let want = plan.naive_dataset();
        assert_eq!(got, want);
    }

    #[test]
    fn faulted_stream_is_byte_identical_to_clean_layout() {
        let fleet = FleetConfig::cpu2006(40, 5, 3);
        let base = StreamConfig::new(fleet).with_shards(3).with_chunk_rows(11);
        // Death changes the layout, so compare two fault schedules that
        // share the death decisions: same seed, transport faults on/off.
        let mut quiet = FaultConfig::standard(77);
        quiet.drop_per_mille = 0;
        quiet.dup_per_mille = 0;
        quiet.reorder_per_mille = 0;
        quiet.truncate_per_mille = 0;
        let noisy = FaultConfig::standard(77);
        let (qs, qbytes) = run(&base.clone().with_faults(quiet), "quiet");
        let (ns, nbytes) = run(&base.clone().with_faults(noisy), "noisy");
        assert_eq!(qs.rows, ns.rows);
        assert_eq!(qbytes, nbytes, "transport faults leaked into bytes");
        assert!(ns.faults_injected > 0, "standard schedule injected nothing");
        assert!(ns.duplicates_dropped > 0 || ns.retransmits > 0);
    }

    #[test]
    fn thread_count_is_invisible() {
        let cfg = StreamConfig::new(FleetConfig::cpu2006(60, 4, 21))
            .with_shards(5)
            .with_chunk_rows(13)
            .with_faults(FaultConfig::standard(4));
        let (_, one) = run(&cfg.clone().with_threads(1), "t1");
        for threads in [2, 8] {
            let (_, many) = run(&cfg.clone().with_threads(threads), &format!("t{threads}"));
            assert_eq!(one, many, "n_threads={threads} changed container bytes");
        }
    }

    #[test]
    fn empty_fleet_seals_empty_container() {
        let cfg = StreamConfig::new(FleetConfig::cpu2006(0, 8, 2));
        let (summary, bytes) = run(&cfg, "empty");
        assert_eq!(summary.rows, 0);
        assert_eq!(summary.chunks, 0);
        let reader = ChunkedReader::open(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.n_rows(), 0);
        assert_eq!(reader.benchmarks().len(), 29);
    }

    #[test]
    fn torn_writes_are_repaired_in_container() {
        let mut faults = FaultConfig::none();
        faults.seed = 31;
        faults.truncate_per_mille = 1000; // tear every chunk write
        let cfg = StreamConfig::new(FleetConfig::cpu2006(30, 4, 13))
            .with_shards(2)
            .with_chunk_rows(10)
            .with_faults(faults);
        let clean = cfg.clone().with_faults(FaultConfig::none());
        let (ts, tbytes) = run(&cfg, "torn");
        let (_, cbytes) = run(&clean, "untorn");
        assert!(ts.torn_writes_repaired > 0);
        assert_eq!(tbytes, cbytes, "torn writes survived into the container");
    }
}
