//! Sliding-window refit against a sealed container.
//!
//! Drift tracking: the trainer refits over a window of recent rows as
//! the stream advances. Each window is keyed by a content fingerprint —
//! the hashes of the chunks covering it, the row range, and the full
//! M5' configuration — and resolved through the artifact store, so a
//! window whose bytes were already fitted (by this process, an earlier
//! run, or another machine sharing the store) warm-starts from the
//! cached tree instead of training. A corrupt cached artifact is
//! evicted by the store and the window is refitted; a corrupt *chunk*
//! surfaces as a typed [`CodecError`] for the caller's
//! evict-and-recompute path ([`crate::StreamPlan::chunk_body`] +
//! [`pipeline::chunked::ChunkedReader::rewrite_chunk`]).
//!
//! Peak memory is one window plus one chunk — never the container.

use modeltree::{M5Config, ModelTree};
use obskit::metrics::{self, Hist, Metric};
use pipeline::chunked::ChunkedReader;
use pipeline::codec::CodecError;
use pipeline::{ArtifactStore, Fingerprint, FingerprintHasher, Fingerprintable};
use std::io::{Read, Seek};
use std::ops::Range;

/// Streaming-layer error: a typed union of the layers a refit crosses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Container decode failure (corruption, truncation, staleness).
    Codec(CodecError),
    /// Trainer failure (degenerate window).
    Train(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Codec(e) => write!(f, "container: {e}"),
            StreamError::Train(e) => write!(f, "trainer: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<CodecError> for StreamError {
    fn from(e: CodecError) -> Self {
        StreamError::Codec(e)
    }
}

/// Sliding-window refit parameters.
#[derive(Debug, Clone)]
pub struct RefitConfig {
    /// Rows per window.
    pub window_rows: u64,
    /// Rows the window slides between refits.
    pub stride: u64,
    /// Trainer configuration shared by every window.
    pub config: M5Config,
}

impl RefitConfig {
    /// A window of `window_rows` sliding by half a window.
    pub fn new(window_rows: u64, config: M5Config) -> Self {
        RefitConfig {
            window_rows: window_rows.max(1),
            stride: (window_rows / 2).max(1),
            config,
        }
    }

    /// Sets the stride.
    #[must_use]
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// The window row ranges over a container of `total` rows: strided
    /// starts while a full window fits, or one clamped window when the
    /// container is shorter than a window. Empty containers get none.
    pub fn windows(&self, total: u64) -> Vec<Range<u64>> {
        if total == 0 {
            return Vec::new();
        }
        if total <= self.window_rows {
            return std::iter::once(0..total).collect();
        }
        let mut out = Vec::new();
        let mut start = 0;
        while start + self.window_rows <= total {
            out.push(start..start + self.window_rows);
            start += self.stride;
        }
        out
    }
}

/// One refitted (or cache-warmed) window.
#[derive(Debug, Clone)]
pub struct WindowFit {
    /// Global row range the model was fitted over.
    pub window: Range<u64>,
    /// Content key of the window (chunk hashes + range + config).
    pub fingerprint: Fingerprint,
    /// Whether the tree came from the artifact store without training.
    pub cached: bool,
    /// Wall-clock nanoseconds the resolution took (load or fit+store).
    pub refit_ns: u64,
    /// The fitted model.
    pub tree: ModelTree,
}

/// The artifact-store key of one window of one container under one
/// trainer configuration. Pure content: two runs that sealed identical
/// chunks produce identical keys, so refit caching is shareable across
/// processes exactly like the batch pipeline's artifacts.
pub fn window_key<R: Read + Seek>(
    reader: &ChunkedReader<R>,
    window: &Range<u64>,
    config: &M5Config,
) -> Fingerprint {
    let mut h = FingerprintHasher::new("stream-window-tree");
    let content = reader.window_fingerprint(window, "stream-window");
    h.write_u64(content.0 as u64);
    h.write_u64((content.0 >> 64) as u64);
    config.fingerprint_into(&mut h);
    h.finish()
}

/// Refits every window of the container, warm-starting from the
/// artifact store. Returns the fits in window order.
///
/// # Errors
///
/// Propagates chunk corruption as [`StreamError::Codec`] (the caller
/// decides whether to recompute via the plan) and trainer failures as
/// [`StreamError::Train`].
pub fn windowed_refit<R: Read + Seek>(
    reader: &mut ChunkedReader<R>,
    store: &ArtifactStore,
    cfg: &RefitConfig,
) -> Result<Vec<WindowFit>, StreamError> {
    let mut fits = Vec::new();
    for window in cfg.windows(reader.n_rows()) {
        fits.push(refit_window(reader, store, cfg, window)?);
    }
    Ok(fits)
}

/// Resolves one window: artifact-store hit or fit-and-store.
///
/// # Errors
///
/// See [`windowed_refit`].
pub fn refit_window<R: Read + Seek>(
    reader: &mut ChunkedReader<R>,
    store: &ArtifactStore,
    cfg: &RefitConfig,
    window: Range<u64>,
) -> Result<WindowFit, StreamError> {
    let started = std::time::Instant::now();
    let key = window_key(reader, &window, &cfg.config);
    if let Ok(tree) = store.load_tree(key) {
        metrics::incr(Metric::StreamRefitCacheHits);
        let refit_ns = started.elapsed().as_nanos() as u64;
        metrics::observe(Hist::StreamRefitNs, refit_ns);
        return Ok(WindowFit {
            window,
            fingerprint: key,
            cached: true,
            refit_ns,
            tree,
        });
    }
    // Miss — or a corrupt cached artifact, which load_tree evicted.
    let data = reader.window_dataset(window.clone())?;
    let tree = ModelTree::fit(&data, &cfg.config).map_err(|e| StreamError::Train(e.to_string()))?;
    if let Err(e) = store.store_tree(key, &tree) {
        // A read-only or full store degrades caching, not correctness.
        obskit::span::emit("stream", "store_tree_failed", &[("error", &e)], false);
    }
    metrics::incr(Metric::StreamRefits);
    let refit_ns = started.elapsed().as_nanos() as u64;
    metrics::observe(Hist::StreamRefitNs, refit_ns);
    Ok(WindowFit {
        window,
        fingerprint: key,
        cached: false,
        refit_ns,
        tree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_stream, FleetConfig, StreamConfig, StreamPlan};
    use std::io::Cursor;
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> (ArtifactStore, PathBuf) {
        let root =
            std::env::temp_dir().join(format!("specrepro-refit-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        (ArtifactStore::open(&root), root)
    }

    fn sealed_container(tag: &str, cfg: &StreamConfig) -> Vec<u8> {
        let path = std::env::temp_dir().join(format!(
            "specrepro-refit-container-{tag}-{}.spdc",
            std::process::id()
        ));
        run_stream(cfg, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        bytes
    }

    #[test]
    fn windows_cover_and_clamp() {
        let cfg = RefitConfig::new(100, M5Config::default()).with_stride(50);
        assert_eq!(cfg.windows(0), Vec::<Range<u64>>::new());
        assert_eq!(cfg.windows(60), vec![0..60]);
        assert_eq!(cfg.windows(200), vec![0..100, 50..150, 100..200]);
    }

    #[test]
    fn refit_matches_in_memory_fit_and_caches() {
        let scfg = StreamConfig::new(FleetConfig::cpu2006(40, 10, 17))
            .with_shards(3)
            .with_chunk_rows(32);
        let plan = StreamPlan::new(&scfg);
        let bytes = sealed_container("hit", &scfg);
        let (store, root) = temp_store("hit");
        let rcfg = RefitConfig::new(200, M5Config::default().with_min_leaf(10));

        let mut reader = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        let fits = windowed_refit(&mut reader, &store, &rcfg).unwrap();
        assert!(!fits.is_empty());
        assert!(fits.iter().all(|f| !f.cached));

        // Differential: each window's OOC fit equals the in-memory fit
        // over the same rows of the naive oracle dataset.
        let naive = plan.naive_dataset();
        for fit in &fits {
            let rows: Vec<u32> = (fit.window.start as u32..fit.window.end as u32).collect();
            let direct = ModelTree::fit_indices(&naive, &rows, &rcfg.config).unwrap();
            assert_eq!(
                fit.tree.predict(naive.sample(rows[0] as usize)).to_bits(),
                direct.predict(naive.sample(rows[0] as usize)).to_bits()
            );
        }

        // Second pass over identical bytes: every window warm-starts.
        let mut reader = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        let again = windowed_refit(&mut reader, &store, &rcfg).unwrap();
        assert!(again.iter().all(|f| f.cached), "cache missed on replay");
        for (a, b) in fits.iter().zip(&again) {
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(
                a.tree.predict(naive.sample(0)).to_bits(),
                b.tree.predict(naive.sample(0)).to_bits()
            );
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn key_tracks_config_and_content() {
        let scfg = StreamConfig::new(FleetConfig::cpu2006(20, 6, 5)).with_chunk_rows(16);
        let bytes = sealed_container("key", &scfg);
        let reader = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        let base = M5Config::default();
        let a = window_key(&reader, &(0..50), &base);
        assert_eq!(a, window_key(&reader, &(0..50), &base));
        assert_ne!(a, window_key(&reader, &(0..60), &base));
        assert_ne!(a, window_key(&reader, &(0..50), &base.with_min_leaf(3)));
    }
}
