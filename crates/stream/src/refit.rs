//! Sliding-window refit against a sealed container.
//!
//! Drift tracking: the trainer refits over a window of recent rows as
//! the stream advances. Each window is keyed by a content fingerprint —
//! the hashes of the chunks covering it, the row range, and the full
//! M5' configuration — and resolved through the artifact store, so a
//! window whose bytes were already fitted (by this process, an earlier
//! run, or another machine sharing the store) warm-starts from the
//! cached tree instead of training. A corrupt cached artifact is
//! evicted by the store and the window is refitted; a corrupt *chunk*
//! surfaces as a typed [`CodecError`] for the caller's
//! evict-and-recompute path ([`crate::StreamPlan::chunk_body`] +
//! [`pipeline::chunked::ChunkedReader::rewrite_chunk`]).
//!
//! Peak memory is one window plus one chunk — never the container.

use modeltree::{M5Config, ModelTree};
use obskit::metrics::{self, Hist, Metric};
use pipeline::chunked::ChunkedReader;
use pipeline::codec::CodecError;
use pipeline::{ArtifactStore, Fingerprint, FingerprintHasher, Fingerprintable};
use std::io::{Read, Seek};
use std::ops::Range;

/// Streaming-layer error: a typed union of the layers a refit crosses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Container decode failure (corruption, truncation, staleness).
    Codec(CodecError),
    /// Trainer failure (degenerate window).
    Train(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Codec(e) => write!(f, "container: {e}"),
            StreamError::Train(e) => write!(f, "trainer: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<CodecError> for StreamError {
    fn from(e: CodecError) -> Self {
        StreamError::Codec(e)
    }
}

/// Sliding-window refit parameters.
#[derive(Debug, Clone)]
pub struct RefitConfig {
    /// Rows per window.
    pub window_rows: u64,
    /// Rows the window slides between refits.
    pub stride: u64,
    /// Trainer configuration shared by every window.
    pub config: M5Config,
}

impl RefitConfig {
    /// A window of `window_rows` sliding by half a window.
    pub fn new(window_rows: u64, config: M5Config) -> Self {
        RefitConfig {
            window_rows: window_rows.max(1),
            stride: (window_rows / 2).max(1),
            config,
        }
    }

    /// Sets the stride.
    #[must_use]
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// The window row ranges over a container of `total` rows: strided
    /// starts while a full window fits, or one clamped window when the
    /// container is shorter than a window. Empty containers get none.
    pub fn windows(&self, total: u64) -> Vec<Range<u64>> {
        if total == 0 {
            return Vec::new();
        }
        if total <= self.window_rows {
            return std::iter::once(0..total).collect();
        }
        let mut out = Vec::new();
        let mut start = 0;
        while start + self.window_rows <= total {
            out.push(start..start + self.window_rows);
            start += self.stride;
        }
        out
    }
}

/// Out-of-window holdout evaluation: the window's tree scored on the
/// rows the stride slides into next — the stream's forward-looking
/// drift signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Holdout {
    /// Global row range evaluated (at most one stride past the window).
    pub rows: Range<u64>,
    /// Mean absolute CPI error of the window's tree over those rows.
    pub mae: f64,
}

/// One refitted (or cache-warmed) window.
#[derive(Debug, Clone)]
pub struct WindowFit {
    /// Global row range the model was fitted over.
    pub window: Range<u64>,
    /// Content key of the window (chunk hashes + range + config).
    pub fingerprint: Fingerprint,
    /// Whether the tree came from the artifact store without training.
    pub cached: bool,
    /// Wall-clock nanoseconds the resolution took (load or fit+store).
    pub refit_ns: u64,
    /// Holdout MAE over the next stride of rows; `None` for the last
    /// window of a container (no rows follow it).
    pub holdout: Option<Holdout>,
    /// The fitted model.
    pub tree: ModelTree,
}

/// The artifact-store key of one window of one container under one
/// trainer configuration. Pure content: two runs that sealed identical
/// chunks produce identical keys, so refit caching is shareable across
/// processes exactly like the batch pipeline's artifacts.
pub fn window_key<R: Read + Seek>(
    reader: &ChunkedReader<R>,
    window: &Range<u64>,
    config: &M5Config,
) -> Fingerprint {
    let mut h = FingerprintHasher::new("stream-window-tree");
    let content = reader.window_fingerprint(window, "stream-window");
    h.write_u64(content.0 as u64);
    h.write_u64((content.0 >> 64) as u64);
    config.fingerprint_into(&mut h);
    h.finish()
}

/// Refits every window of the container, warm-starting from the
/// artifact store. Returns the fits in window order.
///
/// # Errors
///
/// Propagates chunk corruption as [`StreamError::Codec`] (the caller
/// decides whether to recompute via the plan) and trainer failures as
/// [`StreamError::Train`].
pub fn windowed_refit<R: Read + Seek>(
    reader: &mut ChunkedReader<R>,
    store: &ArtifactStore,
    cfg: &RefitConfig,
) -> Result<Vec<WindowFit>, StreamError> {
    let total = reader.n_rows();
    let mut fits = Vec::new();
    for window in cfg.windows(total) {
        let mut fit = refit_window(reader, store, cfg, window)?;
        fit.holdout = holdout_eval(reader, &fit, cfg.stride, total)?;
        publish_holdout(&fit);
        fits.push(fit);
    }
    Ok(fits)
}

/// Scores a window's tree on the rows one stride past the window — the
/// data the *next* refit will train on, so a rising MAE here is drift
/// announcing itself before it lands in a model. `None` when no rows
/// follow the window. Always computed (the value is part of the
/// returned fit, telemetry on or off), so the determinism contract is
/// trivially preserved.
///
/// # Errors
///
/// Chunk corruption in the holdout range surfaces exactly like window
/// corruption: [`StreamError::Codec`].
pub fn holdout_eval<R: Read + Seek>(
    reader: &mut ChunkedReader<R>,
    fit: &WindowFit,
    stride: u64,
    total: u64,
) -> Result<Option<Holdout>, StreamError> {
    let rows = fit.window.end..(fit.window.end + stride).min(total);
    if rows.is_empty() {
        return Ok(None);
    }
    let data = reader.window_dataset(rows.clone())?;
    let actual = data.cpi_column();
    let mut abs_sum = 0.0;
    for (i, cpi) in actual.iter().enumerate() {
        abs_sum += (fit.tree.predict(data.sample(i)) - cpi).abs();
    }
    let mae = abs_sum / actual.len() as f64;
    Ok(Some(Holdout { rows, mae }))
}

/// Publishes a fit's holdout MAE: the live drift gauge the SLO monitors
/// watch ([`obskit::monitor::MonitorSet::refit_drift`]), a microunit
/// histogram for distribution-over-windows, and a flight-recorder
/// breadcrumb tying the value back to its row range.
fn publish_holdout(fit: &WindowFit) {
    let Some(holdout) = &fit.holdout else { return };
    metrics::gauge_set_f64(Metric::StreamRefitHoldoutMae, holdout.mae);
    metrics::observe(Hist::StreamRefitHoldoutMaeMicro, (holdout.mae * 1e6) as u64);
    obskit::ring::record(
        obskit::ring::FlightKind::RefitWindow,
        fit.window.start,
        fit.window.end,
        holdout.mae.to_bits(),
    );
}

/// Resolves one window: artifact-store hit or fit-and-store.
///
/// # Errors
///
/// See [`windowed_refit`].
pub fn refit_window<R: Read + Seek>(
    reader: &mut ChunkedReader<R>,
    store: &ArtifactStore,
    cfg: &RefitConfig,
    window: Range<u64>,
) -> Result<WindowFit, StreamError> {
    let started = std::time::Instant::now();
    let key = window_key(reader, &window, &cfg.config);
    if let Ok(tree) = store.load_tree(key) {
        metrics::incr(Metric::StreamRefitCacheHits);
        let refit_ns = started.elapsed().as_nanos() as u64;
        metrics::observe(Hist::StreamRefitNs, refit_ns);
        return Ok(WindowFit {
            window,
            fingerprint: key,
            cached: true,
            refit_ns,
            holdout: None,
            tree,
        });
    }
    // Miss — or a corrupt cached artifact, which load_tree evicted.
    let data = reader.window_dataset(window.clone())?;
    let tree = ModelTree::fit(&data, &cfg.config).map_err(|e| StreamError::Train(e.to_string()))?;
    if let Err(e) = store.store_tree(key, &tree) {
        // A read-only or full store degrades caching, not correctness.
        obskit::span::emit("stream", "store_tree_failed", &[("error", &e)], false);
    }
    metrics::incr(Metric::StreamRefits);
    let refit_ns = started.elapsed().as_nanos() as u64;
    metrics::observe(Hist::StreamRefitNs, refit_ns);
    Ok(WindowFit {
        window,
        fingerprint: key,
        cached: false,
        refit_ns,
        holdout: None,
        tree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_stream, FleetConfig, StreamConfig, StreamPlan};
    use std::io::Cursor;
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> (ArtifactStore, PathBuf) {
        let root =
            std::env::temp_dir().join(format!("specrepro-refit-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        (ArtifactStore::open(&root), root)
    }

    fn sealed_container(tag: &str, cfg: &StreamConfig) -> Vec<u8> {
        let path = std::env::temp_dir().join(format!(
            "specrepro-refit-container-{tag}-{}.spdc",
            std::process::id()
        ));
        run_stream(cfg, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        bytes
    }

    #[test]
    fn windows_cover_and_clamp() {
        let cfg = RefitConfig::new(100, M5Config::default()).with_stride(50);
        assert_eq!(cfg.windows(0), Vec::<Range<u64>>::new());
        assert_eq!(cfg.windows(60), vec![0..60]);
        assert_eq!(cfg.windows(200), vec![0..100, 50..150, 100..200]);
    }

    #[test]
    fn refit_matches_in_memory_fit_and_caches() {
        let scfg = StreamConfig::new(FleetConfig::cpu2006(40, 10, 17))
            .with_shards(3)
            .with_chunk_rows(32);
        let plan = StreamPlan::new(&scfg);
        let bytes = sealed_container("hit", &scfg);
        let (store, root) = temp_store("hit");
        let rcfg = RefitConfig::new(200, M5Config::default().with_min_leaf(10));

        let mut reader = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        let fits = windowed_refit(&mut reader, &store, &rcfg).unwrap();
        assert!(!fits.is_empty());
        assert!(fits.iter().all(|f| !f.cached));

        // Differential: each window's OOC fit equals the in-memory fit
        // over the same rows of the naive oracle dataset.
        let naive = plan.naive_dataset();
        for fit in &fits {
            let rows: Vec<u32> = (fit.window.start as u32..fit.window.end as u32).collect();
            let direct = ModelTree::fit_indices(&naive, &rows, &rcfg.config).unwrap();
            assert_eq!(
                fit.tree.predict(naive.sample(rows[0] as usize)).to_bits(),
                direct.predict(naive.sample(rows[0] as usize)).to_bits()
            );
        }

        // Second pass over identical bytes: every window warm-starts.
        let mut reader = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        let again = windowed_refit(&mut reader, &store, &rcfg).unwrap();
        assert!(again.iter().all(|f| f.cached), "cache missed on replay");
        for (a, b) in fits.iter().zip(&again) {
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(
                a.tree.predict(naive.sample(0)).to_bits(),
                b.tree.predict(naive.sample(0)).to_bits()
            );
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn holdout_drift_monitor_fires_on_injected_regression() {
        use obskit::metrics::Snapshot;
        use obskit::monitor::MonitorSet;

        let scfg = StreamConfig::new(FleetConfig::cpu2006(60, 12, 23))
            .with_shards(2)
            .with_chunk_rows(64);
        let bytes = sealed_container("drift", &scfg);
        let (store, root) = temp_store("drift");

        let good = RefitConfig::new(150, M5Config::default().with_min_leaf(10)).with_stride(75);
        let mut reader = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        let fits = windowed_refit(&mut reader, &store, &good).unwrap();
        let maes: Vec<f64> = fits
            .iter()
            .filter_map(|f| f.holdout.as_ref().map(|h| h.mae))
            .collect();
        // A window has a forward holdout exactly when rows follow it.
        assert!(maes.len() >= 3, "need several holdout windows");
        let total = fits.last().unwrap().window.end.max(fits[0].window.end);
        for fit in &fits {
            match &fit.holdout {
                Some(h) => {
                    assert_eq!(h.rows.start, fit.window.end);
                    assert!(h.mae.is_finite() && h.mae >= 0.0);
                }
                None => assert_eq!(fit.window.end, total),
            }
        }

        // Inject drift: an underfit trainer (min_leaf swallows whole
        // windows) over the same container collapses each window to a
        // near-constant model, regressing the forward-looking MAE.
        let underfit =
            RefitConfig::new(150, M5Config::default().with_min_leaf(100_000)).with_stride(75);
        let mut reader = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        let bad = windowed_refit(&mut reader, &store, &underfit).unwrap();
        let bad_mae = bad[0].holdout.as_ref().unwrap().mae;
        let baseline = maes.iter().sum::<f64>() / maes.len() as f64;
        assert!(
            bad_mae > baseline * 1.5,
            "underfit holdout MAE {bad_mae} does not regress past baseline {baseline}"
        );

        // Feed the gauge values through the drift monitor exactly as
        // /healthz would see them: healthy windows build the rolling
        // baseline silently, the regressed window fires.
        let mut mon = MonitorSet::refit_drift(8, 3, 0.5);
        let snap_of = |mae: f64| Snapshot {
            float_gauges: vec![("stream.refit_holdout_mae", mae)],
            ..Snapshot::default()
        };
        for &mae in &maes {
            let alerts = mon.evaluate(&snap_of(mae));
            assert!(alerts.is_empty(), "healthy window fired: {alerts:?}");
        }
        let alerts = mon.evaluate(&snap_of(bad_mae));
        assert_eq!(alerts.len(), 1, "drift monitor did not fire");
        assert_eq!(alerts[0].rule, "stream-refit-mae-drift");
        assert_eq!(alerts[0].value, bad_mae);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn key_tracks_config_and_content() {
        let scfg = StreamConfig::new(FleetConfig::cpu2006(20, 6, 5)).with_chunk_rows(16);
        let bytes = sealed_container("key", &scfg);
        let reader = ChunkedReader::open(Cursor::new(&bytes)).unwrap();
        let base = M5Config::default();
        let a = window_key(&reader, &(0..50), &base);
        assert_eq!(a, window_key(&reader, &(0..50), &base));
        assert_ne!(a, window_key(&reader, &(0..60), &base));
        assert_ne!(a, window_key(&reader, &(0..50), &base.with_min_leaf(3)));
    }
}
