//! The simulated fleet: pure per-record generation and the canonical
//! stream layout.
//!
//! A [`StreamPlan`] is the fully resolved, deterministic description of
//! one streaming run: which benchmark each host executes, how many
//! intervals each host emits (after mid-stream deaths), which shard
//! owns each host, the canonical row order within each shard, and the
//! chunk boundaries of the sealed container. Everything downstream —
//! producers, aggregators, the corrupt-chunk recompute path, and the
//! differential oracles in the test suite — derives from this one
//! object, which is itself a pure function of [`crate::StreamConfig`].
//!
//! The load-bearing property is [`StreamPlan::record`]: an interval is
//! a pure function of `(fleet seed, host, seq)`, independent of every
//! other record and of the fault schedule. That is what makes
//! retransmission, duplicate suppression, and byte-identical
//! recomputation of a corrupt chunk possible at all.

use crate::fault::mix3;
use crate::StreamConfig;
use perfcounters::counters::CounterBank;
use perfcounters::{Dataset, EventId, Sample};
use pipeline::chunked::encode_chunk;
use pipeline::SuiteKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};

/// Domain separator decorrelating record rng streams from fault rolls.
const DOM_RECORD: u64 = 0x5ec0_4d5d_0bad_cafe;

/// The simulated fleet: which suite runs, how many hosts, how many
/// intervals each host plans to emit, and the seed every record derives
/// from.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Suite whose benchmarks the hosts execute.
    pub suite: SuiteKind,
    /// Number of simulated hosts.
    pub n_hosts: u64,
    /// Intervals each host plans to emit (host death may cut this
    /// short).
    pub intervals_per_host: u32,
    /// Seed of all record content.
    pub seed: u64,
    /// PMU and cost-model configuration shared by the fleet.
    pub generator: GeneratorConfig,
}

impl FleetConfig {
    /// A CPU2006 fleet of `n_hosts` hosts emitting `intervals_per_host`
    /// intervals each.
    pub fn cpu2006(n_hosts: u64, intervals_per_host: u32, seed: u64) -> Self {
        FleetConfig {
            suite: SuiteKind::cpu2006(),
            n_hosts,
            intervals_per_host,
            seed,
            generator: GeneratorConfig::default(),
        }
    }
}

/// The fully resolved layout of one streaming run. See the module docs.
#[derive(Debug)]
pub struct StreamPlan {
    fleet: FleetConfig,
    suite: Suite,
    benchmarks: Vec<String>,
    bank: CounterBank,
    /// Benchmark index each host executes (fixed for the host's life).
    host_labels: Vec<u32>,
    /// Intervals each host actually emits, after death faults.
    produced: Vec<u32>,
    n_shards: usize,
    chunk_rows: usize,
    /// Hosts owned by each shard, ascending.
    shard_hosts: Vec<Vec<u64>>,
    /// Rows each shard contributes.
    shard_rows: Vec<u64>,
    /// Chunks each shard seals (`ceil(rows / chunk_rows)`).
    shard_chunks: Vec<u64>,
}

impl StreamPlan {
    /// Resolves the full layout from a config. Pure: equal configs give
    /// equal plans.
    pub fn new(cfg: &StreamConfig) -> Self {
        let suite = cfg.fleet.suite.materialize();
        let benchmarks: Vec<String> = suite
            .benchmarks()
            .iter()
            .map(|b| b.name().to_owned())
            .collect();
        let n_hosts = cfg.fleet.n_hosts as usize;
        // Hosts run benchmarks in proportion to instruction-count
        // weight, mirroring the paper's per-benchmark sample
        // allocation at fleet scale.
        let counts = suite.sample_allocation(n_hosts);
        let mut host_labels = Vec::with_capacity(n_hosts);
        for (label, &c) in counts.iter().enumerate() {
            host_labels.extend(std::iter::repeat_n(label as u32, c));
        }
        let produced: Vec<u32> = (0..cfg.fleet.n_hosts)
            .map(|h| cfg.faults.produced(h, cfg.fleet.intervals_per_host))
            .collect();
        let n_shards = cfg.n_shards.max(1);
        let chunk_rows = cfg.chunk_rows.max(1);
        let mut shard_hosts = vec![Vec::new(); n_shards];
        for h in 0..cfg.fleet.n_hosts {
            shard_hosts[(h % n_shards as u64) as usize].push(h);
        }
        let shard_rows: Vec<u64> = shard_hosts
            .iter()
            .map(|hosts| hosts.iter().map(|&h| u64::from(produced[h as usize])).sum())
            .collect();
        let shard_chunks: Vec<u64> = shard_rows
            .iter()
            .map(|&rows| rows.div_ceil(chunk_rows as u64))
            .collect();
        StreamPlan {
            bank: CounterBank::new(cfg.fleet.generator.counters),
            fleet: cfg.fleet,
            suite,
            benchmarks,
            host_labels,
            produced,
            n_shards,
            chunk_rows,
            shard_hosts,
            shard_rows,
            shard_chunks,
        }
    }

    /// The fleet this plan resolves.
    pub fn fleet(&self) -> &FleetConfig {
        &self.fleet
    }

    /// Benchmark name table of the sealed container.
    pub fn benchmarks(&self) -> &[String] {
        &self.benchmarks
    }

    /// Logical shard count.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Rows per sealed chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Benchmark index `host` executes.
    pub fn host_label(&self, host: u64) -> u32 {
        self.host_labels[host as usize]
    }

    /// Intervals `host` actually emits (after death faults).
    pub fn produced(&self, host: u64) -> u32 {
        self.produced[host as usize]
    }

    /// The shard owning `host`.
    pub fn shard_of(&self, host: u64) -> usize {
        (host % self.n_shards as u64) as usize
    }

    /// Hosts owned by `shard`, ascending.
    pub fn shard_hosts(&self, shard: usize) -> &[u64] {
        &self.shard_hosts[shard]
    }

    /// Rows `shard` contributes to the container.
    pub fn shard_rows(&self, shard: usize) -> u64 {
        self.shard_rows[shard]
    }

    /// Total rows across all shards.
    pub fn total_rows(&self) -> u64 {
        self.shard_rows.iter().sum()
    }

    /// Total chunks the container seals.
    pub fn total_chunks(&self) -> u64 {
        self.shard_chunks.iter().sum()
    }

    /// One measured interval — a pure function of `(fleet seed, host,
    /// seq)`. Retransmissions and corrupt-chunk recomputes call this
    /// exactly like first delivery does, and get identical bits.
    pub fn record(&self, host: u64, seq: u32) -> Sample {
        let mut rng =
            StdRng::seed_from_u64(mix3(self.fleet.seed ^ DOM_RECORD, host, u64::from(seq)));
        let bench = &self.suite.benchmarks()[self.host_labels[host as usize] as usize];
        let phase = bench.pick_phase(&mut rng);
        let densities = phase.sample_densities(&mut rng);
        let cpi =
            self.fleet
                .generator
                .cost
                .noisy_cpi(&densities, self.suite.environment(), &mut rng);
        let truth = Sample::from_densities(cpi, &densities);
        self.bank.measure(&truth, &mut rng)
    }

    /// The canonical row order of `shard`: seq-major round-robin over
    /// the shard's hosts (ascending id), skipping hosts past their
    /// final sequence. This is the order the aggregator must — and the
    /// fault suite proves it does — reconstruct from any arrival
    /// interleaving.
    pub fn shard_row_order(&self, shard: usize) -> Vec<(u64, u32)> {
        let hosts = &self.shard_hosts[shard];
        let max_seq = hosts
            .iter()
            .map(|&h| self.produced[h as usize])
            .max()
            .unwrap_or(0);
        let mut order = Vec::with_capacity(self.shard_rows[shard] as usize);
        for seq in 0..max_seq {
            for &h in hosts {
                if seq < self.produced[h as usize] {
                    order.push((h, seq));
                }
            }
        }
        order
    }

    /// Recomputes the encoded body of global chunk `index` from pure
    /// sources — the corrupt-chunk recovery path. The bytes equal the
    /// originally sealed chunk exactly.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn chunk_body(&self, index: u64) -> Vec<u8> {
        let mut remaining = index;
        let mut shard = 0;
        while remaining >= self.shard_chunks[shard] {
            remaining -= self.shard_chunks[shard];
            shard += 1;
        }
        let order = self.shard_row_order(shard);
        let lo = (remaining * self.chunk_rows as u64) as usize;
        let hi = (lo + self.chunk_rows).min(order.len());
        let rows = &order[lo..hi];
        let samples: Vec<Sample> = rows.iter().map(|&(h, s)| self.record(h, s)).collect();
        let labels: Vec<u32> = rows.iter().map(|&(h, _)| self.host_label(h)).collect();
        encode_rows(&samples, &labels)
    }

    /// The whole stream as one in-memory dataset, assembled naively
    /// shard by shard — the differential oracle the test suite compares
    /// the real aggregator against.
    ///
    /// # Panics
    ///
    /// Panics if the plan's labels exceed its own name table (a plan
    /// construction bug).
    pub fn naive_dataset(&self) -> Dataset {
        let mut samples = Vec::with_capacity(self.total_rows() as usize);
        let mut labels = Vec::with_capacity(samples.capacity());
        for shard in 0..self.n_shards {
            for (h, s) in self.shard_row_order(shard) {
                samples.push(self.record(h, s));
                labels.push(self.host_label(h));
            }
        }
        Dataset::from_parts(samples, labels, self.benchmarks.clone())
            .expect("plan labels index the plan's own name table")
    }
}

/// Encodes a row batch as one chunk body: the column transpose plus
/// [`encode_chunk`]'s framing and hash.
///
/// # Panics
///
/// Panics if `samples` and `labels` differ in length.
pub fn encode_rows(samples: &[Sample], labels: &[u32]) -> Vec<u8> {
    assert_eq!(samples.len(), labels.len(), "row batch shape");
    let n = samples.len();
    let cpi: Vec<f64> = samples.iter().map(Sample::cpi).collect();
    let mut events = vec![0.0f64; perfcounters::events::N_EVENTS * n];
    for e in EventId::ALL {
        for (i, s) in samples.iter().enumerate() {
            events[e.index() * n + i] = s.get(e);
        }
    }
    encode_chunk(labels, &cpi, &events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultConfig;
    use pipeline::chunked::decode_chunk;

    fn small_cfg() -> StreamConfig {
        StreamConfig::new(FleetConfig::cpu2006(60, 5, 42))
            .with_shards(4)
            .with_chunk_rows(16)
    }

    #[test]
    fn records_are_pure() {
        let plan = StreamPlan::new(&small_cfg());
        for host in [0u64, 7, 59] {
            for seq in [0u32, 3] {
                let a = plan.record(host, seq);
                let b = plan.record(host, seq);
                assert_eq!(a.cpi().to_bits(), b.cpi().to_bits());
                for e in EventId::ALL {
                    assert_eq!(a.get(e).to_bits(), b.get(e).to_bits());
                }
                assert!(a.is_physical());
            }
        }
        // Distinct (host, seq) pairs draw from distinct streams.
        assert_ne!(
            plan.record(0, 0).cpi().to_bits(),
            plan.record(0, 1).cpi().to_bits()
        );
    }

    #[test]
    fn layout_accounts_every_row_once() {
        let cfg = small_cfg().with_faults(FaultConfig::standard(3));
        let plan = StreamPlan::new(&cfg);
        let mut rows = 0u64;
        for shard in 0..plan.n_shards() {
            let order = plan.shard_row_order(shard);
            assert_eq!(order.len() as u64, plan.shard_rows(shard));
            for &(h, s) in &order {
                assert_eq!(plan.shard_of(h), shard);
                assert!(s < plan.produced(h));
            }
            rows += order.len() as u64;
        }
        assert_eq!(rows, plan.total_rows());
        // Deaths actually shortened somebody.
        assert!(plan.total_rows() < 60 * 5);
    }

    #[test]
    fn chunk_bodies_tile_the_shard_order() {
        let plan = StreamPlan::new(&small_cfg());
        let naive = plan.naive_dataset();
        let mut at = 0usize;
        for c in 0..plan.total_chunks() {
            let chunk = decode_chunk(&plan.chunk_body(c)).unwrap();
            for i in 0..chunk.rows() {
                assert_eq!(chunk.labels[i], naive.label(at));
                assert_eq!(
                    chunk.cpi[i].to_bits(),
                    naive.sample(at).cpi().to_bits(),
                    "row {at}"
                );
                at += 1;
            }
        }
        assert_eq!(at as u64, plan.total_rows());
    }

    #[test]
    fn labels_follow_weight_allocation() {
        let plan = StreamPlan::new(&small_cfg());
        assert_eq!(plan.benchmarks().len(), 29);
        let mut seen = vec![0usize; 29];
        for h in 0..60 {
            seen[plan.host_label(h) as usize] += 1;
        }
        assert_eq!(seen.iter().sum::<usize>(), 60);
    }

    #[test]
    fn zero_host_fleet_is_empty_not_panicking() {
        let cfg = StreamConfig::new(FleetConfig::cpu2006(0, 5, 1));
        let plan = StreamPlan::new(&cfg);
        assert_eq!(plan.total_rows(), 0);
        assert_eq!(plan.total_chunks(), 0);
        assert!(plan.naive_dataset().is_empty());
    }

    #[test]
    fn zero_interval_fleet_is_empty_not_panicking() {
        let cfg = StreamConfig::new(FleetConfig::cpu2006(40, 0, 1));
        let plan = StreamPlan::new(&cfg);
        assert_eq!(plan.total_rows(), 0);
        assert!(plan.naive_dataset().is_empty());
    }
}
