//! Deterministic, content-keyed fault injection.
//!
//! Every decision is a pure function of the fault seed and the
//! *identity* of the thing being faulted — `(host, seq)` for transport
//! faults, the global chunk index for torn writes — never of arrival
//! order, wall clock, or thread id. Two runs with the same seed inject
//! the same fault schedule on any thread count, which is what lets the
//! test suite assert byte-identical output under fire.

/// SplitMix64-style finalizer over a seed and two identity words.
pub(crate) fn mix3(seed: u64, a: u64, b: u64) -> u64 {
    let mut x =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xd1b5_4a32_d192_ed03);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Domain separators so the per-fault decision streams are independent.
const DOM_DROP: u64 = 0x01;
const DOM_DUP: u64 = 0x02;
const DOM_REORDER: u64 = 0x03;
const DOM_DEATH: u64 = 0x04;
const DOM_TRUNCATE: u64 = 0x05;

/// Seeded fault schedule. Rates are per-mille (0 disables the fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the fault schedule (independent of the fleet seed, so
    /// the same records can be replayed under different adversaries).
    pub seed: u64,
    /// Probability (‰) an interval's first delivery is dropped. Dropped
    /// intervals are retransmitted after the host's batch — drops delay
    /// rows, they never lose them.
    pub drop_per_mille: u32,
    /// Probability (‰) an interval is delivered twice.
    pub dup_per_mille: u32,
    /// Probability (‰) a delivery is held back and released later,
    /// arriving out of order.
    pub reorder_per_mille: u32,
    /// Maximum deliveries a reordered envelope is held behind.
    pub max_delay: usize,
    /// Probability (‰) a host dies mid-stream, emitting only a prefix
    /// (possibly empty) of its planned intervals.
    pub death_per_mille: u32,
    /// Probability (‰) a chunk's first container write is torn
    /// (truncated at a schedule-chosen byte).
    pub truncate_per_mille: u32,
}

impl FaultConfig {
    /// No faults: the identity transport.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
            reorder_per_mille: 0,
            max_delay: 0,
            death_per_mille: 0,
            truncate_per_mille: 0,
        }
    }

    /// The standard adversary used by CI and the fault suite: a few
    /// percent of everything, aggressive enough to stall cursors and
    /// tear chunk writes on every run.
    pub fn standard(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_per_mille: 30,
            dup_per_mille: 30,
            reorder_per_mille: 80,
            max_delay: 9,
            death_per_mille: 40,
            truncate_per_mille: 150,
        }
    }

    /// Whether any fault has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.drop_per_mille > 0
            || self.dup_per_mille > 0
            || self.reorder_per_mille > 0
            || self.death_per_mille > 0
            || self.truncate_per_mille > 0
    }

    fn roll(&self, domain: u64, a: u64, b: u64) -> u64 {
        mix3(self.seed ^ domain.wrapping_mul(0xa076_1d64_78bd_642f), a, b)
    }

    /// Whether `(host, seq)`'s first delivery is dropped (retransmit
    /// follows).
    pub fn drops(&self, host: u64, seq: u32) -> bool {
        self.drop_per_mille > 0
            && self.roll(DOM_DROP, host, u64::from(seq)) % 1000 < u64::from(self.drop_per_mille)
    }

    /// Whether `(host, seq)` is delivered twice.
    pub fn duplicates(&self, host: u64, seq: u32) -> bool {
        self.dup_per_mille > 0
            && self.roll(DOM_DUP, host, u64::from(seq)) % 1000 < u64::from(self.dup_per_mille)
    }

    /// How many deliveries `(host, seq)` is held behind (0 = in order).
    pub fn delay(&self, host: u64, seq: u32) -> usize {
        if self.reorder_per_mille == 0 || self.max_delay == 0 {
            return 0;
        }
        let r = self.roll(DOM_REORDER, host, u64::from(seq));
        if r % 1000 < u64::from(self.reorder_per_mille) {
            1 + ((r >> 32) as usize % self.max_delay)
        } else {
            0
        }
    }

    /// The number of intervals `host` actually emits out of `planned`:
    /// `planned` if the host survives, otherwise a schedule-chosen
    /// prefix length in `[0, planned)` (mid-stream death).
    pub fn produced(&self, host: u64, planned: u32) -> u32 {
        if self.death_per_mille == 0 || planned == 0 {
            return planned;
        }
        let r = self.roll(DOM_DEATH, host, u64::from(planned));
        if r % 1000 < u64::from(self.death_per_mille) {
            ((r >> 32) % u64::from(planned)) as u32
        } else {
            planned
        }
    }

    /// If chunk `index`'s first write is torn, the byte count that
    /// actually lands (strictly less than `body_len`).
    pub fn truncates(&self, index: u64, body_len: usize) -> Option<usize> {
        if self.truncate_per_mille == 0 || body_len == 0 {
            return None;
        }
        let r = self.roll(DOM_TRUNCATE, index, body_len as u64);
        if r % 1000 < u64::from(self.truncate_per_mille) {
            Some(((r >> 32) as usize) % body_len)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let f = FaultConfig::none();
        assert!(!f.is_active());
        for host in 0..50u64 {
            for seq in 0..20u32 {
                assert!(!f.drops(host, seq));
                assert!(!f.duplicates(host, seq));
                assert_eq!(f.delay(host, seq), 0);
            }
            assert_eq!(f.produced(host, 17), 17);
        }
        assert_eq!(f.truncates(3, 1000), None);
    }

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let a = FaultConfig::standard(11);
        let b = FaultConfig::standard(11);
        let c = FaultConfig::standard(12);
        let mut differs = false;
        for host in 0..200u64 {
            for seq in 0..8u32 {
                assert_eq!(a.drops(host, seq), b.drops(host, seq));
                assert_eq!(a.delay(host, seq), b.delay(host, seq));
                differs |= a.drops(host, seq) != c.drops(host, seq);
            }
            assert_eq!(a.produced(host, 9), b.produced(host, 9));
        }
        assert!(differs, "seed change never altered the schedule");
    }

    #[test]
    fn standard_rates_land_in_band() {
        let f = FaultConfig::standard(5);
        let n = 20_000u64;
        let drops = (0..n).filter(|&h| f.drops(h, 0)).count() as f64 / n as f64;
        assert!((0.01..0.06).contains(&drops), "drop rate {drops}");
        let deaths = (0..n).filter(|&h| f.produced(h, 10) != 10).count() as f64 / n as f64;
        assert!((0.01..0.08).contains(&deaths), "death rate {deaths}");
    }

    #[test]
    fn death_prefix_in_range_and_truncation_strictly_short() {
        let f = FaultConfig::standard(7);
        for host in 0..2000u64 {
            let p = f.produced(host, 12);
            assert!(p <= 12);
        }
        for idx in 0..2000u64 {
            if let Some(n) = f.truncates(idx, 500) {
                assert!(n < 500);
            }
        }
    }

    #[test]
    fn delay_bounded_by_max() {
        let f = FaultConfig::standard(9);
        let mut saw_delay = false;
        for host in 0..2000u64 {
            let d = f.delay(host, 3);
            assert!(d <= f.max_delay);
            saw_delay |= d > 0;
        }
        assert!(saw_delay);
    }
}
