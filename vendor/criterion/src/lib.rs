//! Offline drop-in subset of the `criterion` benchmarking API used by
//! this workspace.
//!
//! Implements the group/bench-function surface with a straightforward
//! wall-clock harness: each benchmark is warmed up, an iteration count
//! is chosen so one sample takes a measurable slice of time, and the
//! per-iteration min/median/max over the sample set is printed in a
//! criterion-like line. No statistics beyond that, no HTML reports.
//!
//! Like upstream criterion, passing `--test` on the command line
//! (`cargo bench -- --test`) switches to smoke mode: every benchmark
//! body runs exactly once with no calibration or timed sampling, so CI
//! can verify the benches still execute without paying for
//! measurement.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendered as `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a parameter component, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter (`from_parameter` in upstream).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Units processed per iteration; recorded for the throughput line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Smoke mode (`--test`): run the body once, skip timing.
    smoke: bool,
    /// Median per-iteration time of the last `iter` call.
    median: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timing (or
    /// exactly once, untimed, in `--test` smoke mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Warm-up and calibration: find an iteration count that makes a
        // sample take ~20ms so short routines aren't drowned in timer
        // noise.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(20) || iters_per_sample >= 1 << 20 {
                break;
            }
            // Aim directly for the target based on the observed rate.
            let per_iter = elapsed.as_nanos().max(1) / u128::from(iters_per_sample);
            let target = Duration::from_millis(20).as_nanos();
            iters_per_sample = u64::try_from((target / per_iter.max(1)).clamp(1, 1 << 20))
                .expect("clamped to u64 range");
        }

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            times.push(start.elapsed() / u32::try_from(iters_per_sample).unwrap_or(u32::MAX));
        }
        times.sort_unstable();
        self.min = times[0];
        self.median = times[times.len() / 2];
        self.max = times[times.len() - 1];
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn report(group: &str, id: &str, throughput: Option<Throughput>, b: &Bencher) {
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.smoke {
        println!("Testing {name} ... ok");
        return;
    }
    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        format_duration(b.min),
        format_duration(b.median),
        format_duration(b.max),
    );
    if let Some(t) = throughput {
        let secs = b.median.as_secs_f64();
        if secs > 0.0 {
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  thrpt: {:.0} B/s", n as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    smoke: bool,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Records throughput units for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the harness sizes itself.
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            smoke: self.smoke,
            median: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
        };
        f(&mut bencher);
        report(&self.name, id, self.throughput, &bencher);
    }

    /// Benchmarks a closure under a plain string id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id_str = id.id.clone();
        self.run(&id_str, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in this stub).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    smoke: bool,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            smoke: self.smoke,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.run(id, f);
        self
    }

    /// Applies the supported command-line options: `--test` selects
    /// smoke mode (run every benchmark body once, untimed). All other
    /// flags are accepted and ignored for API compatibility.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.smoke = std::env::args().any(|arg| arg == "--test");
        self
    }
}

/// Defines a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
