//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace pins its entire experimental pipeline to explicitly
//! seeded generators, so the only surface it needs from `rand` is
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` sampling
//! methods used by the generators (`gen`, `gen_range`, `gen_bool`).
//! The build environment has no access to crates.io, so that subset is
//! vendored here and wired in through `[patch.crates-io]`.
//!
//! `StdRng` is implemented as xoshiro256++ seeded through SplitMix64 —
//! a deterministic, statistically solid generator. Its stream differs
//! from upstream `rand`'s ChaCha-based `StdRng`, which is acceptable
//! here: upstream makes no cross-version stream guarantee for `StdRng`
//! either, and every experiment in this repository derives its
//! expectations from the seeds it runs with, not from externally
//! recorded streams.

/// The core source of randomness: a 64-bit generator step.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's native output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low` is the caller's
    /// responsibility (checked by `gen_range`).
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased bounded draw in `[0, span)` by rejection sampling.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, i64, i32);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_below(rng, self.start, self.end)
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        if lo == 0 && hi == usize::MAX {
            return rng.next_u64() as usize;
        }
        lo + bounded_u64(rng, (hi - lo + 1) as u64) as usize
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "hits {hits}");
    }
}
