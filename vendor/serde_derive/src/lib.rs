//! Offline drop-in subset of `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! vendored value-tree serde stub (see `vendor/serde`). The input
//! grammar is parsed directly from the `proc_macro` token stream — no
//! `syn`/`quote`, since those can't be fetched in this offline build
//! environment.
//!
//! Supported input shapes (everything this workspace derives on):
//! - structs with named fields, tuple structs, unit structs
//! - enums with unit variants (incl. explicit discriminants), newtype /
//!   tuple variants, and struct variants (externally tagged, matching
//!   upstream serde's default JSON representation)
//! - field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`
//!
//! Generics and container-level serde attributes are not supported and
//! fail loudly at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled in during deserialization.
#[derive(Clone, Debug)]
enum MissingPolicy {
    /// Missing field is an error.
    Required,
    /// `#[serde(default)]`: use `Default::default()`.
    DefaultTrait,
    /// `#[serde(default = "path")]`: call `path()`.
    DefaultFn(String),
}

#[derive(Clone, Debug)]
struct Field {
    name: String,
    skip: bool,
    missing: MissingPolicy,
}

#[derive(Clone, Debug)]
enum Fields {
    Named(Vec<Field>),
    /// Tuple fields; only the arity matters for codegen.
    Tuple(usize),
    Unit,
}

#[derive(Clone, Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Clone, Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Clone, Debug)]
struct Input {
    name: String,
    body: Body,
}

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(stream: TokenStream) -> Parser {
        Parser {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn peek_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, got {other:?}"),
        }
    }

    fn expect_punct(&mut self, c: char) {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == c => {}
            other => panic!("serde_derive: expected `{c}`, got {other:?}"),
        }
    }

    /// Consumes one `#[...]` attribute, folding any `serde(...)`
    /// directives it carries into `(skip, missing)`.
    fn consume_attr(&mut self, skip: &mut bool, missing: &mut MissingPolicy) {
        self.expect_punct('#');
        let group = match self.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive: expected attribute brackets, got {other:?}"),
        };
        let mut inner = Parser::new(group.stream());
        if !inner.peek_ident("serde") {
            return; // doc comment, repr, non_exhaustive, ...
        }
        inner.next();
        let list = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => panic!("serde_derive: expected serde(...), got {other:?}"),
        };
        let mut args = Parser::new(list.stream());
        while !args.at_end() {
            let directive = args.expect_ident();
            match directive.as_str() {
                "skip" => *skip = true,
                "default" => {
                    if args.peek_punct('=') {
                        args.next();
                        match args.next() {
                            Some(TokenTree::Literal(lit)) => {
                                let raw = lit.to_string();
                                let path = raw.trim_matches('"').to_string();
                                *missing = MissingPolicy::DefaultFn(path);
                            }
                            other => {
                                panic!(
                                    "serde_derive: expected string after default =, got {other:?}"
                                )
                            }
                        }
                    } else {
                        *missing = MissingPolicy::DefaultTrait;
                    }
                }
                other => panic!("serde_derive: unsupported serde attribute `{other}`"),
            }
            if args.peek_punct(',') {
                args.next();
            }
        }
    }

    /// Consumes attributes and visibility before an item/field/variant.
    fn consume_prelude(&mut self) -> (bool, MissingPolicy) {
        let mut skip = false;
        let mut missing = MissingPolicy::Required;
        loop {
            if self.peek_punct('#') {
                self.consume_attr(&mut skip, &mut missing);
            } else if self.peek_ident("pub") {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next(); // pub(crate) / pub(super)
                    }
                }
            } else {
                return (skip, missing);
            }
        }
    }

    /// Consumes a type (or discriminant expression): everything up to a
    /// comma at angle-bracket depth zero.
    fn consume_until_toplevel_comma(&mut self) {
        let mut depth: i64 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut p = Parser::new(stream);
    let mut fields = Vec::new();
    loop {
        let (skip, missing) = p.consume_prelude();
        if p.at_end() {
            break;
        }
        let name = p.expect_ident();
        p.expect_punct(':');
        p.consume_until_toplevel_comma();
        if p.peek_punct(',') {
            p.next();
        }
        fields.push(Field {
            name,
            skip,
            missing,
        });
    }
    fields
}

fn parse_tuple_arity(stream: TokenStream) -> usize {
    let mut p = Parser::new(stream);
    let mut arity = 0usize;
    let mut saw_tokens = false;
    let mut depth: i64 = 0;
    while let Some(t) = p.next() {
        match t {
            TokenTree::Punct(ref q) if q.as_char() == '<' => depth += 1,
            TokenTree::Punct(ref q) if q.as_char() == '>' => depth -= 1,
            TokenTree::Punct(ref q) if q.as_char() == ',' && depth == 0 => {
                arity += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut p = Parser::new(stream);
    let mut variants = Vec::new();
    loop {
        let _ = p.consume_prelude();
        if p.at_end() {
            break;
        }
        let name = p.expect_ident();
        let fields = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                p.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(parse_tuple_arity(g.stream()));
                p.next();
                f
            }
            _ => Fields::Unit,
        };
        if p.peek_punct('=') {
            p.next();
            p.consume_until_toplevel_comma(); // explicit discriminant
        }
        if p.peek_punct(',') {
            p.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(stream: TokenStream) -> Input {
    let mut p = Parser::new(stream);
    let _ = p.consume_prelude();
    let kind = p.expect_ident();
    let name = p.expect_ident();
    if p.peek_punct('<') {
        panic!("serde_derive: generic types are not supported by this offline stub");
    }
    let body = match kind.as_str() {
        "struct" => match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(parse_tuple_arity(g.stream())))
            }
            Some(TokenTree::Punct(q)) if q.as_char() == ';' => Body::Struct(Fields::Unit),
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Input { name, body }
}

/// Emits the expression that serializes `named` fields (available as
/// bindings or `self.name` accesses, per `access`) into an object.
fn gen_named_to_object(fields: &[Field], access: &dyn Fn(&str) -> String) -> String {
    let mut code = String::from(
        "{ let mut entries: ::std::vec::Vec<(::std::string::String, serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        if f.skip {
            continue;
        }
        code.push_str(&format!(
            "entries.push((::std::string::String::from(\"{n}\"), \
             serde::Serialize::to_value(&{a})));\n",
            n = f.name,
            a = access(&f.name),
        ));
    }
    code.push_str("serde::Value::Object(entries) }");
    code
}

/// Emits the field initializers that rebuild `named` fields from the
/// object expression `src`.
fn gen_named_from_object(type_name: &str, fields: &[Field], src: &str) -> String {
    let mut code = String::new();
    for f in fields {
        let missing = match (&f.skip, &f.missing) {
            (true, _) | (false, MissingPolicy::DefaultTrait) => {
                "::std::default::Default::default()".to_string()
            }
            (false, MissingPolicy::DefaultFn(path)) => format!("{path}()"),
            (false, MissingPolicy::Required) => format!(
                "return ::std::result::Result::Err(serde::Error(::std::format!(\
                 \"missing field `{n}` for {t}\")))",
                n = f.name,
                t = type_name,
            ),
        };
        if f.skip {
            code.push_str(&format!("{n}: {missing},\n", n = f.name));
        } else {
            code.push_str(&format!(
                "{n}: match {src}.get(\"{n}\") {{ \
                 ::std::option::Option::Some(__v) => serde::Deserialize::from_value(__v)?, \
                 ::std::option::Option::None => {missing}, }},\n",
                n = f.name,
            ));
        }
    }
    code
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Named(fields)) => {
            gen_named_to_object(fields, &|f| format!("self.{f}"))
        }
        Body::Struct(Fields::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Unit) => "serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds = binders.join(", "),
                        ));
                    }
                    Fields::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let obj = gen_named_to_object(fields, &|f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {obj})]),\n",
                            binds = binders.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Named(fields)) => {
            let inits = gen_named_from_object(name, fields, "__value");
            format!(
                "match __value {{ serde::Value::Object(_) => {{}}, __other => \
                 return ::std::result::Result::Err(serde::Error(::std::format!(\
                 \"expected object for {name}, got {{:?}}\", __other))), }}\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(__value)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __value {{ serde::Value::Array(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({items})), __other => \
                 ::std::result::Result::Err(serde::Error(::std::format!(\
                 \"expected array of {n} for {name}, got {{:?}}\", __other))), }}",
                items = items.join(", "),
            )
        }
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(n) => {
                        let ctor = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(\
                                 serde::Deserialize::from_value(__inner)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            format!(
                                "match __inner {{ serde::Value::Array(__items) \
                                 if __items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vn}({items})), __other => \
                                 ::std::result::Result::Err(serde::Error(::std::format!(\
                                 \"expected array of {n} for {name}::{vn}, got {{:?}}\", \
                                 __other))), }}",
                                items = items.join(", "),
                            )
                        };
                        data_arms.push_str(&format!("\"{vn}\" => {{ {ctor} }},\n"));
                    }
                    Fields::Named(fields) => {
                        let tn = format!("{name}::{vn}");
                        let inits = gen_named_from_object(&tn, fields, "__inner");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(serde::Error(::std::format!(\
                 \"unknown variant {{:?}} for {name}\", __other))),\n\
                 }},\n\
                 serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(serde::Error(::std::format!(\
                 \"unknown variant {{:?}} for {name}\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(serde::Error(::std::format!(\
                 \"expected enum value for {name}, got {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl serde::Deserialize for {name} {{\n\
         fn from_value(__value: &serde::Value) -> \
         ::std::result::Result<Self, serde::Error> {{ {body} }}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
