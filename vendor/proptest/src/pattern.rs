//! A tiny regex-shaped string generator covering the pattern grammar
//! this workspace's tests use: literal characters, `.`, character
//! classes with ranges (`[A-Za-z0-9._\-]`), and `{m,n}` / `{n}`
//! repetition. Anything outside that grammar panics loudly rather than
//! silently generating the wrong language.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any printable ASCII character except newline.
    Any,
    Literal(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        *chars
                            .get(i)
                            .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))
                    } else {
                        chars[i]
                    };
                    i += 1;
                    // A `-` between two class members denotes a range.
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in pattern {pattern:?}"
                );
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Literal(c)
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported pattern syntax {:?} in {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {n} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let mut lo = String::new();
            while i < chars.len() && chars[i].is_ascii_digit() {
                lo.push(chars[i]);
                i += 1;
            }
            let lo: usize = lo.parse().expect("quantifier lower bound");
            let hi = if i < chars.len() && chars[i] == ',' {
                i += 1;
                let mut hi = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    hi.push(chars[i]);
                    i += 1;
                }
                hi.parse().expect("quantifier upper bound")
            } else {
                lo
            };
            assert!(
                i < chars.len() && chars[i] == '}',
                "unterminated quantifier in pattern {pattern:?}"
            );
            i += 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut StdRng) -> char {
    match atom {
        Atom::Any => {
            // Printable ASCII, the `.`-matchable subset our tests need.
            char::from(rng.gen_range(0x20u32..0x7F) as u8)
        }
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0u32..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick).expect("class range is valid");
                }
                pick -= span;
            }
            unreachable!("pick < total by construction")
        }
    }
}

/// Generates one random string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            rng.gen_range(piece.min..=piece.max)
        };
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn covers_workspace_patterns() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = generate(".{0,400}", &mut rng);
            assert!(s.len() <= 400);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));

            let s = generate("[a-z0-9,.\\-]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ",.-".contains(c)));

            let s = generate("[A-Za-z0-9._]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "._".contains(c)));
        }
    }
}
