//! Offline drop-in subset of the `proptest` API used by this workspace.
//!
//! Implements the pieces the test suite relies on — the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`, range/tuple/string/vec
//! strategies, and the `prop_map`/`prop_filter_map` combinators — as a
//! plain random-case runner. There is no shrinking: a failing case
//! panics with the case number and assertion message, and every run is
//! deterministic (the RNG stream is derived from the test's module path
//! and name), so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// A failed property assertion inside a proptest case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps debug-mode test runs quick
        // while still exercising plenty of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a hash of a test's identity, used to seed its RNG stream.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic per-case RNG.
#[must_use]
pub fn rng_for(base: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, retrying when it returns
    /// `None`.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// The [`Strategy::prop_filter_map`] combinator.
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected 10000 consecutive inputs: {}",
            self.whence
        )
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u32, u64, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

mod pattern;

/// `&str` strategies are regex-like patterns over a small supported
/// grammar: literals, `.`, character classes, and `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        pattern::generate(self, rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a range.
    pub trait SizeSpec {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeSpec for usize {
        fn pick(&self, _: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeSpec for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.start..self.end)
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports for property tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the process) so the runner can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)+
            )));
        }
    }};
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                __left,
                __right
            )));
        }
    }};
}

/// Defines property tests: each `fn` runs its body over random samples
/// of the named strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strategy:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __base = $crate::fnv1a(::std::concat!(
                    ::std::module_path!(), "::", ::std::stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng_for(__base, u64::from(__case));
                    let ($($arg,)+) = (
                        $($crate::Strategy::sample(&($strategy), &mut __rng),)+
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        ::std::panic!(
                            "proptest {} failed on case {}/{}: {}",
                            ::std::stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..7, y in -2.0f64..2.0) {
            prop_assert!(x < 7);
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in crate::collection::vec(0.0f64..1.0, 3..9),
            exact in crate::collection::vec(0u64..10, 4usize),
        ) {
            prop_assert!((3..9).contains(&v.len()));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn string_patterns_match_grammar(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0.0f64..1.0, 1..6)
                .prop_filter_map("nonempty mass", |v| {
                    let total: f64 = v.iter().sum();
                    if total > 0.0 { Some(total) } else { None }
                })
        ) {
            prop_assert!(v > 0.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng_for(crate::fnv1a("x"), 3);
        let mut b = crate::rng_for(crate::fnv1a("x"), 3);
        let s: String = crate::Strategy::sample(&"[a-z]{8}", &mut a);
        let t: String = crate::Strategy::sample(&"[a-z]{8}", &mut b);
        assert_eq!(s, t);
    }
}
