//! Offline drop-in subset of the `serde` API used by this workspace.
//!
//! The build environment has no access to crates.io, so the small part
//! of serde this repository relies on — `#[derive(Serialize,
//! Deserialize)]` on concrete structs/enums plus JSON round-trips via
//! `serde_json` — is vendored here and wired in with
//! `[patch.crates-io]`.
//!
//! Design: instead of serde's visitor architecture, both traits go
//! through a self-describing [`Value`] tree (the JSON data model).
//! `Serialize` lowers a type to a `Value`; `Deserialize` lifts it back.
//! The derive macro in the companion `serde_derive` crate generates
//! those impls with externally-tagged enum representation, matching
//! upstream serde's default JSON layout.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A self-describing data tree (the JSON data model).
///
/// Integers are kept apart from floats so that `u64`/`i64` fields
/// round-trip exactly; object entries preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64` if it is an exact integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// The value as a `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the variant, used in error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a type to the [`Value`] data model.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Lifts a type back from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, failing with a descriptive error on shape
    /// mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility alias: this stub has no borrowed deserialization, so
/// every `Deserialize` is owned.
pub mod de {
    pub use crate::{Deserialize, Deserialize as DeserializeOwned, Error};
}

/// Compatibility alias for serde's serializer-side module.
pub mod ser {
    pub use crate::{Error, Serialize};
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, got {}", got.kind())))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let i = v.as_i64().ok_or_else(|| {
                    Error(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    Error(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let u = v.as_u64().ok_or_else(|| {
                    Error(format!("expected unsigned integer, got {}", v.kind()))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    Error(format!("integer {u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match *v {
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| Error(format!("expected number, got {}", v.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<BTreeSet<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, matching serde_json's BTreeMap
        // backing.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error(format!(
                                "expected tuple of {expected}, got array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => type_error("array (tuple)", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
