//! Offline drop-in subset of the `serde_json` API used by this
//! workspace: JSON text <-> the vendored serde stub's [`Value`] tree.
//!
//! Covers `to_string{,_pretty}`, `to_writer`, `to_vec`, `from_str`,
//! `from_reader`, `from_slice`, `to_value`/`from_value`, and the
//! [`json!`] macro with string-literal keys (the only key form the
//! workspace uses).

use std::fmt::Write as _;
use std::io;

pub use serde::Value;

mod parse;

/// JSON (de)serialization failure.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl std::fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// A `Result` with this crate's [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors upstream's signature.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a deserializable type from a [`Value`] tree.
///
/// # Errors
///
/// Fails when the value tree does not match the target type's shape.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's Display for f64 is the shortest representation that
        // round-trips, but drops the ".0" on integral values; keep it so
        // the token stays a JSON float.
        let mut s = format!("{f}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        out.push_str(&s);
    } else {
        // serde_json refuses non-finite floats; emitting null matches
        // its lossy `json!` behavior and keeps reports writable.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails in this stub.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON text.
///
/// # Errors
///
/// Never fails in this stub.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value as compact JSON bytes.
///
/// # Errors
///
/// Never fails in this stub.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes a value as compact JSON into a writer.
///
/// # Errors
///
/// Fails on I/O errors from the writer.
pub fn to_writer<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes()).map_err(Error::new)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse::parse(s).map_err(Error::new)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses a value from JSON bytes.
///
/// # Errors
///
/// Fails on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(s)
}

/// Parses a value from a reader.
///
/// # Errors
///
/// Fails on I/O errors, malformed JSON, or a shape mismatch.
pub fn from_reader<R: io::Read, T: serde::Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf).map_err(Error::new)?;
    from_str(&buf)
}

/// Builds a [`Value`] from JSON-like syntax. Object keys must be string
/// literals; values may be any serializable Rust expression.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation muncher for [`json!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ---- array elements -------------------------------------------------
    (@array [$($elems:expr,)*]) => {
        $crate::Value::Array(::std::vec![$($elems,)*])
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(true),] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(false),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($inner:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array
            [$($elems,)* $crate::json_internal!([$($inner)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($inner:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array
            [$($elems,)* $crate::json_internal!({$($inner)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array
            [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last),])
    };
    // ---- object entries -------------------------------------------------
    (@object [$($pairs:expr,)*]) => {
        $crate::Value::Object(::std::vec![$($pairs,)*])
    };
    (@object [$($pairs:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@object [$($pairs,)*] $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : null $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($pairs,)* (::std::string::String::from($key), $crate::Value::Null),]
            $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : true $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($pairs,)* (::std::string::String::from($key), $crate::Value::Bool(true)),]
            $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : false $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($pairs,)* (::std::string::String::from($key), $crate::Value::Bool(false)),]
            $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : [$($inner:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($pairs,)* (::std::string::String::from($key),
                $crate::json_internal!([$($inner)*])),]
            $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : {$($inner:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($pairs,)* (::std::string::String::from($key),
                $crate::json_internal!({$($inner)*})),]
            $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($pairs,)* (::std::string::String::from($key),
                $crate::json_internal!($value)),]
            $($rest)*)
    };
    (@object [$($pairs:expr,)*] $key:literal : $value:expr) => {
        $crate::json_internal!(@object
            [$($pairs,)* (::std::string::String::from($key),
                $crate::json_internal!($value)),])
    };
    // ---- single values --------------------------------------------------
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([ $($tt:tt)* ]) => {
        $crate::json_internal!(@array [] $($tt)*)
    };
    ({ $($tt:tt)* }) => {
        $crate::json_internal!(@object [] $($tt)*)
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value is serializable")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for text in [
            "null",
            "true",
            "-42",
            "18446744073709551615",
            "0.125",
            "\"a\\nb\"",
        ] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn float_precision_roundtrip() {
        let xs = vec![1.0e-17_f64, std::f64::consts::PI, -0.1, 1e300];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn json_macro_shapes() {
        let name = "leaf";
        let v = json!({
            "tag": name,
            "count": 3,
            "ratio": 0.5,
            "flags": [true, false, null],
            "nested": {"empty": [], "list": [1, 2.5, "x"]},
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v.get("tag").and_then(Value::as_str), Some("leaf"));
        assert_eq!(back.get("count").and_then(Value::as_u64), Some(3));
        assert!(matches!(
            back.get("nested").and_then(|n| n.get("list")),
            Some(Value::Array(_))
        ));
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({"a": [1, {"b": 2}], "c": "d"});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        let compact: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, compact);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
