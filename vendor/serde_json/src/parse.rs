//! Recursive-descent JSON parser producing the serde stub's `Value`.

use serde::Value;

pub struct ParseError {
    msg: String,
    offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            offset: self.pos,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            self.err(format!("expected keyword {word}"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => self.err(format!("unexpected character {:?}", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                _ => return self.err("expected `,` or `]` in array"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return self.err("expected `,` or `}` in object"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require the matching low half.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return self.err("invalid low surrogate");
                            }
                            0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            first
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return self.err("invalid unicode escape"),
                        }
                    }
                    _ => return self.err("invalid escape sequence"),
                },
                Some(byte) => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = match byte {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return self.err("invalid UTF-8"),
                    };
                    if start + len > self.bytes.len() {
                        return self.err("truncated UTF-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..start + len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8"),
                    }
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return self.err("invalid \\u escape"),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Float(f)),
            Err(_) => self.err(format!("invalid number {text:?}")),
        }
    }
}

/// Parses one complete JSON document.
pub fn parse(s: &str) -> Result<Value, ParseError> {
    let mut cursor = Cursor {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = cursor.parse_value()?;
    cursor.skip_ws();
    if cursor.pos != cursor.bytes.len() {
        return cursor.err("trailing characters after JSON document");
    }
    Ok(value)
}
