//! Quickstart: generate PMU data for the synthetic SPEC CPU2006 suite,
//! fit an M5' model tree, inspect it, and predict.
//!
//! Run with `cargo run --release -p spec-suite-repro --example quickstart
//! [n_samples] [seed]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_suite_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_samples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    // 1. Generate interval samples: each is a 2M-instruction window
    //    measured by a 5-counter PMU with 2 multiplexed programmable
    //    counters.
    let suite = Suite::cpu2006();
    let mut rng = StdRng::seed_from_u64(seed);
    let data = suite.generate(&mut rng, n_samples, &GeneratorConfig::default());
    println!(
        "generated {} samples across {} benchmarks; suite CPI = {:.3}",
        data.len(),
        data.benchmark_count(),
        data.cpi_summary().expect("non-empty").mean()
    );

    // 2. Fit the M5' model tree (the paper's Figure 1 analogue).
    let config = M5Config::default().with_min_leaf((data.len() / 100).max(4));
    let tree = ModelTree::fit(&data, &config).expect("fit succeeds on non-empty data");
    println!("\n{}", display::render_summary(&tree));
    println!("{}", display::render_tree(&tree));

    // 3. Inspect the leaf linear models, paper-equation style.
    println!("{}", display::render_models(&tree));

    // 4. Predict the CPI of a hypothetical workload interval.
    let mut probe = Sample::zeros(0.0);
    probe.set(EventId::Load, 0.3);
    probe.set(EventId::DtlbMiss, 5e-4);
    probe.set(EventId::LdBlkStA, 9e-4);
    probe.set(EventId::L2Miss, 3e-4);
    println!(
        "probe interval classifies into LM{} with predicted CPI {:.3}",
        tree.classify(&probe),
        tree.predict(&probe)
    );

    // 5. Explain the prediction: the decision path and the leaf equation.
    println!("\nexplanation:\n{}", tree.explain(&probe));
}
