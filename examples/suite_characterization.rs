//! Suite characterization: the paper's Section IV/V workflow.
//!
//! Fits a model tree per suite, classifies each benchmark's samples
//! through it (Tables II and IV), and reports the most/least similar
//! benchmark pairs (Table III's headline observations).
//!
//! Run with `cargo run --release -p spec-suite-repro --example
//! suite_characterization [n_samples] [seed]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_suite_repro::prelude::*;

fn characterize_suite(suite: &Suite, n_samples: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = suite.generate(&mut rng, n_samples, &GeneratorConfig::default());
    let config = M5Config::default()
        .with_min_leaf((data.len() / 120).max(4))
        .with_sd_fraction(0.08);
    let tree = ModelTree::fit(&data, &config).expect("non-empty dataset");

    println!("==================================================================");
    println!("{} — {} samples", suite.name(), data.len());
    println!("==================================================================");
    println!("{}", modeltree::display::render_summary(&tree));

    let table = ProfileTable::build(&tree, &data);
    println!("sample distribution across linear models by benchmark (percent):");
    println!("{}", table.render());

    let matrix = SimilarityMatrix::from_table(&table);
    println!("most similar benchmark pairs (L1 profile distance):");
    for (a, b, d) in matrix.most_similar_pairs(4) {
        println!("  {a:<16} vs {b:<16} {:.1}%", 100.0 * d);
    }
    println!("most dissimilar benchmark pairs:");
    for (a, b, d) in matrix.most_dissimilar_pairs(4) {
        println!("  {a:<16} vs {b:<16} {:.1}%", 100.0 * d);
    }
    let mut by_suite_distance: Vec<(&String, f64)> = matrix
        .names()
        .iter()
        .map(|n| (n, matrix.distance_to_suite(n).expect("name from matrix")))
        .collect();
    by_suite_distance.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("benchmarks most representative of the whole suite:");
    for (name, d) in by_suite_distance.iter().take(3) {
        println!("  {name:<16} {:.1}% from suite profile", 100.0 * d);
    }
    println!();
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_samples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);

    characterize_suite(&Suite::cpu2006(), n_samples, seed);
    characterize_suite(&Suite::omp2001(), n_samples, seed + 1);
}
