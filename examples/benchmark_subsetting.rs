//! Benchmark subsetting: the application motivated by the paper's
//! related-work survey.
//!
//! Uses the leaf-profile vectors of the characterization pipeline as the
//! feature space and selects a representative subset of SPEC CPU2006
//! with both k-means and greedy k-center selection, reporting coverage.
//!
//! Run with `cargo run --release -p spec-suite-repro --example
//! benchmark_subsetting [k] [n_samples] [seed]`.

use characterize::{greedy_subset, kmeans_subset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_suite_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let n_samples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(31);

    let mut rng = StdRng::seed_from_u64(seed);
    let data = Suite::cpu2006().generate(&mut rng, n_samples, &GeneratorConfig::default());
    let config = M5Config::default()
        .with_min_leaf((data.len() / 120).max(4))
        .with_sd_fraction(0.08);
    let tree = ModelTree::fit(&data, &config).expect("non-empty dataset");
    let table = ProfileTable::build(&tree, &data);

    println!(
        "selecting {k} representatives of {} benchmarks over {} behavior classes\n",
        table.names().len(),
        table.n_leaves()
    );

    let greedy = greedy_subset(&table, k);
    println!("greedy k-center subset:");
    for name in &greedy.selected {
        println!("  {name}");
    }
    println!(
        "  coverage: max distance {:.1}%, mean distance {:.1}%\n",
        100.0 * greedy.max_distance,
        100.0 * greedy.mean_distance
    );

    let kmeans = kmeans_subset(&table, k, seed);
    println!("k-means subset:");
    for name in &kmeans.selected {
        println!("  {name}");
    }
    println!(
        "  coverage: max distance {:.1}%, mean distance {:.1}%",
        100.0 * kmeans.max_distance,
        100.0 * kmeans.mean_distance
    );

    // Sweep k to show the coverage/size trade-off.
    println!("\ncoverage vs subset size (greedy):");
    for k in 1..=12.min(table.names().len()) {
        let r = greedy_subset(&table, k);
        println!(
            "  k = {k:>2}: max {:.1}%  mean {:.1}%",
            100.0 * r.max_distance,
            100.0 * r.mean_distance
        );
    }
}
