//! Transferability study: the paper's Section VI, all four directions.
//!
//! Trains a model on a 10% random subset of each suite's data and
//! assesses transferability (a) to the remainder of the same suite and
//! (b) to the other suite — expecting the paper's conclusion: models
//! transfer within a suite but not across suites, in either direction.
//!
//! Run with `cargo run --release -p spec-suite-repro --example
//! transferability_study [n_samples] [seed]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_suite_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_samples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(21);

    let gen = GeneratorConfig::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let cpu = Suite::cpu2006().generate(&mut rng, n_samples, &gen);
    let omp = Suite::omp2001().generate(&mut rng, n_samples, &gen);

    // The paper trains on 10% and holds out the rest.
    let (cpu_train, cpu_rest) = cpu.split_random(&mut rng, 0.10);
    let (omp_train, omp_rest) = omp.split_random(&mut rng, 0.10);

    let m5 = M5Config::default().with_min_leaf((cpu_train.len() / 100).max(4));
    let cpu_tree = ModelTree::fit(&cpu_train, &m5).expect("cpu fit");
    let omp_tree = ModelTree::fit(&omp_train, &m5).expect("omp fit");

    let config = TransferConfig::default();
    let cases = [
        (
            &cpu_tree,
            &cpu_train,
            &cpu_rest,
            "CPU2006 (10%)",
            "CPU2006 (rest)",
        ),
        (&cpu_tree, &cpu_train, &omp_rest, "CPU2006 (10%)", "OMP2001"),
        (
            &omp_tree,
            &omp_train,
            &omp_rest,
            "OMP2001 (10%)",
            "OMP2001 (rest)",
        ),
        (&omp_tree, &omp_train, &cpu_rest, "OMP2001 (10%)", "CPU2006"),
    ];
    for (tree, train, test, train_name, test_name) in cases {
        let report =
            TransferabilityReport::assess(tree, train, test, train_name, test_name, &config)
                .expect("datasets large enough");
        println!("{}", report.render());
    }

    println!("paper shape to compare against: within-suite C ~ 0.92 / MAE ~ 0.10 (transferable);");
    println!("cross-suite C ~ 0.43 / MAE ~ 0.37 (not transferable), in both directions.");
}
