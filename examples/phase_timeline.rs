//! Phase timeline: classify a time-ordered execution trace through the
//! suite model tree and show how behavior classes track program phases.
//!
//! This is the temporal view behind the paper's interval samples: phases
//! appear as runs of consecutive intervals landing in the same linear
//! model.
//!
//! Run with `cargo run --release -p spec-suite-repro --example
//! phase_timeline [benchmark] [n_intervals] [seed]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_suite_repro::prelude::*;
use workloads::trace::{generate_trace, TraceConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let benchmark = args.next().unwrap_or_else(|| "429.mcf".to_owned());
    let n_intervals: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(41);

    let suite = Suite::cpu2006();
    let gen = GeneratorConfig::default();
    let mut rng = StdRng::seed_from_u64(seed);

    // Fit the suite tree on i.i.d. suite data, as the paper does.
    let train = suite.generate(&mut rng, 30_000, &gen);
    let tree = ModelTree::fit(&train, &M5Config::default().with_min_leaf(150))
        .expect("fit on non-empty data");

    // Generate the temporal trace and classify each interval.
    let trace = generate_trace(
        &suite,
        &mut rng,
        &benchmark,
        n_intervals,
        &gen,
        &TraceConfig::default(),
    )
    .unwrap_or_else(|| {
        eprintln!("unknown benchmark {benchmark}; valid names come from Suite::cpu2006()");
        std::process::exit(1);
    });

    println!(
        "{benchmark}: {} intervals, {} ground-truth phases, tree with {} behavior classes\n",
        trace.len(),
        trace.phase_names().len(),
        tree.n_leaves()
    );

    // Compress the classified timeline into runs.
    let timeline = characterize::ClassTimeline::classify(&tree, trace.samples());
    let runs = timeline.runs();
    println!(
        "behavior-class runs: {} (mean length {:.1} intervals)",
        runs.len(),
        timeline.mean_run_length()
    );
    println!("first 20 runs (LM x length):");
    for (lm, len) in runs.iter().take(20) {
        println!("  LM{lm:<3} x {len}");
    }
    let lm_sequence = timeline.classes().to_vec();

    // How well do behavior classes recover ground-truth phases? For each
    // phase, find its dominant LM and measure agreement.
    let n_phases = trace.phase_names().len();
    let n_lms = tree.n_leaves();
    let mut counts = vec![vec![0usize; n_lms + 1]; n_phases];
    for (&phase, &lm) in trace.phase_indices().iter().zip(&lm_sequence) {
        counts[phase][lm] += 1;
    }
    println!("\nground-truth phase -> dominant behavior class:");
    let mut agree = 0usize;
    for (p, row) in counts.iter().enumerate() {
        let total: usize = row.iter().sum();
        if total == 0 {
            continue;
        }
        let (best_lm, best) = row
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .expect("non-empty row");
        agree += best;
        println!(
            "  {:<18} -> LM{:<3} ({:.0}% of its {} intervals)",
            trace.phase_names()[p],
            best_lm,
            100.0 * *best as f64 / total as f64,
            total
        );
    }
    println!(
        "\noverall phase/class agreement: {:.1}%",
        100.0 * agree as f64 / trace.len() as f64
    );
    println!(
        "timeline purity against ground-truth phases: {:.1}%",
        100.0 * timeline.purity_against(trace.phase_indices())
    );

    // A coarse CPI timeline (median per bucket of intervals).
    let series = trace.cpi_series();
    let buckets = 20.min(series.len());
    let per = series.len() / buckets.max(1);
    println!("\nCPI timeline ({} buckets of {} intervals):", buckets, per);
    for b in 0..buckets {
        let slice = &series[b * per..((b + 1) * per).min(series.len())];
        let mean = slice.iter().sum::<f64>() / slice.len() as f64;
        let bar = "#".repeat((mean * 20.0) as usize);
        println!("  t{:>2}: {mean:>5.2} {bar}", b);
    }
}
