//! Cross-crate invariants, including property-based tests over randomly
//! generated workload data.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_suite_repro::prelude::*;

fn generate(suite: &Suite, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    suite.generate(&mut rng, n, &GeneratorConfig::default())
}

#[test]
fn every_generated_sample_is_physical() {
    for (suite, seed) in [(Suite::cpu2006(), 1u64), (Suite::omp2001(), 2u64)] {
        let data = generate(&suite, 5_000, seed);
        for (s, _) in data.iter() {
            assert!(s.is_physical());
            assert!(
                s.cpi() > 0.05 && s.cpi() < 10.0,
                "implausible CPI {}",
                s.cpi()
            );
            // Densities are per-instruction values.
            for e in EventId::ALL {
                assert!(
                    s.get(e) <= 1.0,
                    "{} density {} > 1",
                    e.short_name(),
                    s.get(e)
                );
            }
        }
    }
}

#[test]
fn smoothed_predictions_stay_within_sane_cpi_range() {
    let data = generate(&Suite::cpu2006(), 8_000, 3);
    let tree = ModelTree::fit(&data, &M5Config::default().with_min_leaf(50)).expect("fit");
    let probe_data = generate(&Suite::cpu2006(), 2_000, 4);
    for i in 0..probe_data.len() {
        let p = tree.predict(probe_data.sample(i));
        assert!(p.is_finite());
        assert!(p > -1.0 && p < 12.0, "prediction {p} out of range");
    }
}

#[test]
fn unpruned_tree_has_no_fewer_leaves_and_no_worse_train_error() {
    let data = generate(&Suite::omp2001(), 6_000, 5);
    let pruned = ModelTree::fit(&data, &M5Config::default().with_min_leaf(60)).expect("fit");
    let unpruned = ModelTree::fit(
        &data,
        &M5Config::default().with_min_leaf(60).with_prune(false),
    )
    .expect("fit");
    assert!(unpruned.n_leaves() >= pruned.n_leaves());
    // On training data the bigger tree can't be meaningfully worse.
    assert!(unpruned.mean_abs_error(&data) <= pruned.mean_abs_error(&data) + 0.02);
}

#[test]
fn smoothing_off_matches_leaf_models_exactly() {
    let data = generate(&Suite::cpu2006(), 6_000, 6);
    let tree = ModelTree::fit(
        &data,
        &M5Config::default().with_min_leaf(60).with_smoothing(false),
    )
    .expect("fit");
    let leaves = tree.leaves();
    for i in (0..data.len()).step_by(101) {
        let s = data.sample(i);
        let lm = tree.classify(s);
        let leaf_model = &leaves[lm - 1].model;
        assert!(
            (tree.predict(s) - leaf_model.predict(s)).abs() < 1e-12,
            "unsmoothed prediction differs from leaf model"
        );
    }
}

#[test]
fn profile_of_training_data_matches_leaf_shares() {
    let data = generate(&Suite::cpu2006(), 6_000, 7);
    let tree = ModelTree::fit(&data, &M5Config::default().with_min_leaf(60)).expect("fit");
    let profile = characterize::LeafProfile::of(&tree, &data);
    for leaf in tree.leaves() {
        assert!(
            (profile.share(leaf.lm_index) - leaf.share).abs() < 1e-9,
            "LM{}: profile {} vs leaf {}",
            leaf.lm_index,
            profile.share(leaf.lm_index),
            leaf.share
        );
    }
}

#[test]
fn knn_and_tree_agree_on_dense_regions() {
    let data = generate(&Suite::cpu2006(), 6_000, 8);
    let mut rng = StdRng::seed_from_u64(9);
    let (train, test) = data.split_random(&mut rng, 0.7);
    let tree = ModelTree::fit(&train, &M5Config::default().with_min_leaf(40)).expect("fit");
    let knn = KnnRegressor::fit(&train, 15).expect("knn fit");
    // Both should be decent; their predictions should broadly agree.
    let tree_preds = tree.predict_all(&test);
    let knn_preds = knn.predict_all(&test);
    let m = PredictionMetrics::from_predictions(&tree_preds, &knn_preds).expect("metrics");
    assert!(m.correlation > 0.8, "tree/knn agreement too low: {m}");
}

#[test]
fn platform_drift_decays_monotonically_around_training_contention() {
    // An OMP model trained at contention 1.0 must fit its own platform
    // best, with accuracy degrading in both directions.
    let mut rng = StdRng::seed_from_u64(77);
    let base = Suite::omp2001().generate(&mut rng, 8_000, &GeneratorConfig::default());
    let tree = ModelTree::fit(&base, &M5Config::default().with_min_leaf(60)).expect("fit");
    let mae_at = |contention: f64| {
        let mut cfg = GeneratorConfig::default();
        cfg.cost = cfg.cost.with_contention(contention);
        let mut rng = StdRng::seed_from_u64(78);
        let shifted = Suite::omp2001().generate(&mut rng, 4_000, &cfg);
        tree.mean_abs_error(&shifted)
    };
    let at_half = mae_at(0.5);
    let at_one = mae_at(1.0);
    let at_two = mae_at(2.0);
    assert!(at_one < at_half, "on-platform {at_one} vs 0.5x {at_half}");
    assert!(at_one < at_two, "on-platform {at_one} vs 2x {at_two}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_pipeline_invariants_hold_for_any_seed(seed in 0u64..10_000) {
        let data = generate(&Suite::cpu2006(), 1_500, seed);
        prop_assert_eq!(data.len(), 1_500);
        let tree = ModelTree::fit(&data, &M5Config::default().with_min_leaf(30)).unwrap();
        // Leaf shares always partition the training set.
        let total: f64 = tree.leaves().iter().map(|l| l.share).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Every classification lands in [1, n_leaves].
        for i in (0..data.len()).step_by(173) {
            let lm = tree.classify(data.sample(i));
            prop_assert!(lm >= 1 && lm <= tree.n_leaves());
        }
        // Training MAE is bounded (regimes are learnable).
        prop_assert!(tree.mean_abs_error(&data) < 0.25);
    }

    #[test]
    fn prop_split_fractions_partition(seed in 0u64..10_000, fraction in 0.05f64..0.95) {
        let data = generate(&Suite::omp2001(), 400, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let (a, b) = data.split_random(&mut rng, fraction);
        prop_assert_eq!(a.len() + b.len(), data.len());
        let expected = (fraction * 400.0).ceil() as usize;
        prop_assert_eq!(a.len(), expected);
    }

    #[test]
    fn prop_metrics_detect_self_prediction(seed in 0u64..10_000) {
        let data = generate(&Suite::cpu2006(), 300, seed);
        let cpis = data.cpis();
        let m = PredictionMetrics::from_predictions(&cpis, &cpis).unwrap();
        prop_assert!((m.correlation - 1.0).abs() < 1e-9);
        prop_assert_eq!(m.mae, 0.0);
    }
}
