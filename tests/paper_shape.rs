//! The paper's headline findings, asserted as integration tests.
//!
//! These are the "shape" checks of the reproduction: who wins, what
//! splits where, and which way each transferability verdict falls — not
//! absolute numbers, which depend on the synthetic substrate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_suite_repro::prelude::*;

const N: usize = 24_000;

fn generate(suite: &Suite, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    suite.generate(&mut rng, N, &GeneratorConfig::default())
}

fn fit(data: &Dataset) -> ModelTree {
    let config = M5Config::default()
        .with_min_leaf((data.len() / 120).max(4))
        .with_sd_fraction(0.08);
    ModelTree::fit(data, &config).expect("fit")
}

#[test]
fn cpu2006_tree_roots_on_dtlb_misses() {
    // Paper, Section IV-A1: "Its root position identifies DTLB misses as
    // the most discriminating performance factor."
    let data = generate(&Suite::cpu2006(), 1);
    let tree = fit(&data);
    assert_eq!(
        tree.root_split_event(),
        Some(EventId::DtlbMiss),
        "\n{}",
        modeltree::display::render_tree(&tree)
    );
    // Memory-hierarchy events dominate the tree, as in Figure 1.
    let used = tree.used_events();
    assert!(used.contains(&EventId::L2Miss) || used.contains(&EventId::L1DMiss));
}

#[test]
fn omp2001_tree_roots_on_load_block_overlap() {
    // Paper, Section V: "Load block overlapping a store ... shows at the
    // root of the tree."
    let data = generate(&Suite::omp2001(), 2);
    let tree = fit(&data);
    assert_eq!(
        tree.root_split_event(),
        Some(EventId::LdBlkOlp),
        "\n{}",
        modeltree::display::render_tree(&tree)
    );
}

#[test]
fn parallel_fit_preserves_paper_root_splits() {
    // Regression guard for the presorted split search and parallel
    // training: the E2 (CPU2006) and E5 (OMP2001) experiments must root
    // on the same events the paper reports, and a 4-thread fit must be
    // bit-identical to the serial fit on both.
    for (suite, seed, root) in [
        (Suite::cpu2006(), 1u64, EventId::DtlbMiss),
        (Suite::omp2001(), 2u64, EventId::LdBlkOlp),
    ] {
        let data = generate(&suite, seed);
        let serial = fit(&data);
        let par_config = M5Config::default()
            .with_min_leaf((data.len() / 120).max(4))
            .with_sd_fraction(0.08)
            .with_n_threads(4);
        let par = ModelTree::fit(&data, &par_config).expect("parallel fit");
        assert_eq!(serial.root_split_event(), Some(root), "{}", suite.name());
        assert_eq!(par.root_split_event(), Some(root), "{}", suite.name());
        assert!(
            serial.structural_eq(&par),
            "{}: 4-thread fit diverged from serial",
            suite.name()
        );
    }
}

#[test]
fn suite_cpi_levels_match_paper_bands() {
    // Paper, Section VI-A2: CPU2006 mean CPI 0.96 (sd 0.53); OMP2001
    // mean 1.21 (sd 0.60).
    let cpu = generate(&Suite::cpu2006(), 3).cpi_summary().unwrap();
    let omp = generate(&Suite::omp2001(), 4).cpi_summary().unwrap();
    assert!(
        (0.75..1.20).contains(&cpu.mean()),
        "cpu mean {}",
        cpu.mean()
    );
    assert!(
        (1.00..1.50).contains(&omp.mean()),
        "omp mean {}",
        omp.mean()
    );
    assert!(omp.mean() > cpu.mean());
    assert!(cpu.std_dev() > 0.3 && cpu.std_dev() < 0.8);
}

#[test]
fn hpc_five_are_similar_and_mcf_namd_are_not() {
    // Paper, Table III: hmmer/namd/gromacs/calculix/dealII differences
    // are a few percent; mcf vs namd is 97.7%.
    let data = generate(&Suite::cpu2006(), 5);
    let tree = fit(&data);
    let table = ProfileTable::build(&tree, &data);
    let matrix = SimilarityMatrix::from_table(&table);

    let similar_pairs = [
        ("456.hmmer", "444.namd"),
        ("435.gromacs", "444.namd"),
        ("454.calculix", "447.dealII"),
    ];
    for (a, b) in similar_pairs {
        let d = matrix.distance_by_name(a, b).expect("both present");
        assert!(d < 0.15, "{a} vs {b}: {d}");
    }
    let d = matrix.distance_by_name("429.mcf", "444.namd").unwrap();
    assert!(d > 0.85, "mcf vs namd: {d}");
    let d = matrix.distance_by_name("444.namd", "459.GemsFDTD").unwrap();
    assert!(d > 0.7, "namd vs GemsFDTD: {d}");
}

#[test]
fn salient_benchmarks_dominate_their_signature_leaves() {
    let data = generate(&Suite::cpu2006(), 6);
    let tree = fit(&data);
    let table = ProfileTable::build(&tree, &data);

    // sphinx3's dominant leaf is not shared as dominant by hmmer (split
    // loads are its private signature, Table II's LM18 observation).
    let sphinx = table.profile("482.sphinx3").unwrap();
    let hmmer = table.profile("456.hmmer").unwrap();
    assert_ne!(sphinx.dominant_lm(), hmmer.dominant_lm());
    assert!(sphinx.l1_distance(hmmer) > 0.5);

    // omnetpp has high CPI concentrated in its own class (the paper's
    // LM24, CPI 2.1).
    let mut rng = StdRng::seed_from_u64(60);
    let omnetpp_data = Suite::cpu2006()
        .generate_benchmark(&mut rng, "471.omnetpp", 3_000, &GeneratorConfig::default())
        .expect("omnetpp exists");
    let mean = omnetpp_data.cpi_summary().unwrap().mean();
    assert!((1.5..2.5).contains(&mean), "omnetpp mean CPI {mean}");
}

#[test]
fn omp_overlap_classes_cover_half_the_suite() {
    // Paper: "Linear models 17 and 18 cover more than half of the
    // training set" — i.e. the load-block-overlap regimes dominate.
    let data = generate(&Suite::omp2001(), 7);
    let n_overlapped = (0..data.len())
        .filter(|&i| data.sample(i).get(EventId::LdBlkOlp) > 7.4e-3)
        .count();
    let share = n_overlapped as f64 / data.len() as f64;
    assert!((0.35..0.65).contains(&share), "overlap share {share}");
}

#[test]
fn transferability_verdicts_match_paper() {
    // Paper, Section VI: a model trained on 10% of a suite transfers to
    // the rest of that suite, and does not transfer across suites, in
    // either direction, under both methodologies.
    let cpu = generate(&Suite::cpu2006(), 8);
    let omp = generate(&Suite::omp2001(), 9);
    let mut rng = StdRng::seed_from_u64(10);
    let (cpu_train, cpu_rest) = cpu.split_random(&mut rng, 0.1);
    let (omp_train, omp_rest) = omp.split_random(&mut rng, 0.1);
    let m5 = M5Config::default().with_min_leaf((cpu_train.len() / 100).max(4));
    let cpu_tree = ModelTree::fit(&cpu_train, &m5).unwrap();
    let omp_tree = ModelTree::fit(&omp_train, &m5).unwrap();
    let config = TransferConfig::default();

    let within_cpu =
        TransferabilityReport::assess(&cpu_tree, &cpu_train, &cpu_rest, "cpu", "cpu", &config)
            .unwrap();
    assert!(within_cpu.transferable(), "{}", within_cpu.render());
    // Paper shape: C = 0.9214, MAE = 0.0988.
    assert!(within_cpu.metrics.correlation > 0.85);
    assert!(within_cpu.metrics.mae < 0.15);

    let within_omp =
        TransferabilityReport::assess(&omp_tree, &omp_train, &omp_rest, "omp", "omp", &config)
            .unwrap();
    assert!(within_omp.transferable(), "{}", within_omp.render());

    let cross_co =
        TransferabilityReport::assess(&cpu_tree, &cpu_train, &omp_rest, "cpu", "omp", &config)
            .unwrap();
    assert!(!cross_co.transferable(), "{}", cross_co.render());
    // Paper shape: C = 0.4337, MAE = 0.3721 — far outside thresholds.
    assert!(cross_co.metrics.correlation < 0.85);
    assert!(cross_co.metrics.mae > 0.15);
    // And the t-test rejects loudly, as the paper's t = 125.384 does.
    assert!(cross_co.hypothesis.cpi_datasets.statistic.abs() > 10.0);

    let cross_oc =
        TransferabilityReport::assess(&omp_tree, &omp_train, &cpu_rest, "omp", "cpu", &config)
            .unwrap();
    assert!(!cross_oc.transferable(), "{}", cross_oc.render());
}

#[test]
fn suites_use_different_key_events() {
    // Paper: "many of the key events that appear in one tree model do
    // not appear in the other" — the structural basis of
    // non-transferability.
    let cpu_tree = fit(&generate(&Suite::cpu2006(), 11));
    let omp_tree = fit(&generate(&Suite::omp2001(), 12));
    let cpu_events = cpu_tree.used_events();
    let omp_events = omp_tree.used_events();
    let symmetric_difference = cpu_events.symmetric_difference(&omp_events).count();
    assert!(
        symmetric_difference >= 2,
        "trees use nearly identical event sets: cpu {cpu_events:?} vs omp {omp_events:?}"
    );
}
