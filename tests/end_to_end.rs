//! End-to-end integration: data generation → model tree → profiling →
//! similarity → transferability, exercising every crate boundary.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_suite_repro::prelude::*;

fn generate(suite: &Suite, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    suite.generate(&mut rng, n, &GeneratorConfig::default())
}

#[test]
fn full_pipeline_cpu2006() {
    let data = generate(&Suite::cpu2006(), 12_000, 101);
    assert_eq!(data.benchmark_count(), 29);

    let config = M5Config::default().with_min_leaf(100);
    let tree = ModelTree::fit(&data, &config).expect("fit");
    assert!(tree.n_leaves() >= 4, "tree too small: {}", tree.n_leaves());
    assert!(tree.mean_abs_error(&data) < 0.12);

    // Classification must route every sample to a real leaf.
    let table = ProfileTable::build(&tree, &data);
    for p in table.profiles() {
        let total: f64 = p.shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
    let suite_total: f64 = table.suite().shares().iter().sum();
    assert!((suite_total - 1.0).abs() < 1e-9);

    // Similarity matrix agrees with direct profile distances.
    let matrix = SimilarityMatrix::from_table(&table);
    let a = &table.names()[0];
    let b = &table.names()[1];
    let direct = table
        .profile(a)
        .unwrap()
        .l1_distance(table.profile(b).unwrap());
    assert!((matrix.distance_by_name(a, b).unwrap() - direct).abs() < 1e-12);
}

#[test]
fn dataset_roundtrips_preserve_classification() {
    let data = generate(&Suite::omp2001(), 4_000, 102);
    let tree = ModelTree::fit(&data, &M5Config::default().with_min_leaf(50)).expect("fit");

    // CSV round trip.
    let mut csv = Vec::new();
    data.to_csv(&mut csv).expect("write csv");
    let back = Dataset::from_csv(csv.as_slice()).expect("parse csv");
    assert_eq!(back.len(), data.len());
    for i in (0..data.len()).step_by(97) {
        assert_eq!(
            tree.classify(back.sample(i)),
            tree.classify(data.sample(i)),
            "classification changed across CSV round trip at {i}"
        );
    }

    // Tree JSON round trip preserves predictions exactly enough.
    let json = serde_json::to_string(&tree).expect("serialize tree");
    let tree2: ModelTree = serde_json::from_str(&json).expect("deserialize tree");
    for i in (0..data.len()).step_by(131) {
        let s = data.sample(i);
        assert!((tree.predict(s) - tree2.predict(s)).abs() < 1e-9);
    }
}

#[test]
fn transferability_pipeline_runs_both_directions() {
    let cpu = generate(&Suite::cpu2006(), 10_000, 103);
    let omp = generate(&Suite::omp2001(), 10_000, 104);
    let mut rng = StdRng::seed_from_u64(105);
    let (cpu_train, cpu_rest) = cpu.split_random(&mut rng, 0.1);
    let (omp_train, omp_rest) = omp.split_random(&mut rng, 0.1);

    let m5 = M5Config::default().with_min_leaf(20);
    let cpu_tree = ModelTree::fit(&cpu_train, &m5).expect("cpu fit");
    let omp_tree = ModelTree::fit(&omp_train, &m5).expect("omp fit");
    let config = TransferConfig::default();

    let within_cpu =
        TransferabilityReport::assess(&cpu_tree, &cpu_train, &cpu_rest, "c", "c", &config)
            .expect("assess");
    let within_omp =
        TransferabilityReport::assess(&omp_tree, &omp_train, &omp_rest, "o", "o", &config)
            .expect("assess");
    let cross_co =
        TransferabilityReport::assess(&cpu_tree, &cpu_train, &omp_rest, "c", "o", &config)
            .expect("assess");
    let cross_oc =
        TransferabilityReport::assess(&omp_tree, &omp_train, &cpu_rest, "o", "c", &config)
            .expect("assess");

    assert!(
        within_cpu.accuracy_transferable(),
        "{}",
        within_cpu.render()
    );
    assert!(
        within_omp.accuracy_transferable(),
        "{}",
        within_omp.render()
    );
    assert!(!cross_co.accuracy_transferable(), "{}", cross_co.render());
    assert!(!cross_oc.accuracy_transferable(), "{}", cross_oc.render());
}

#[test]
fn baselines_rank_behind_model_tree() {
    let data = generate(&Suite::cpu2006(), 10_000, 106);
    let mut rng = StdRng::seed_from_u64(107);
    let (train, test) = data.split_random(&mut rng, 0.5);

    let tree = ModelTree::fit(&train, &M5Config::default().with_min_leaf(50)).expect("fit");
    let ols = OlsRegressor::fit(&train).expect("ols fit");
    let cart = RegressionTree::fit(&train, Default::default()).expect("cart fit");

    let tree_mae = tree.mean_abs_error(&test);
    let ols_mae = ols.mean_abs_error(&test);
    let cart_mae = cart.mean_abs_error(&test);

    // The paper's premise: a single linear model cannot capture the
    // piecewise cost structure; the model tree must clearly beat it.
    assert!(tree_mae < 0.7 * ols_mae, "tree {tree_mae} vs ols {ols_mae}");
    // CART captures the regimes but pays for constant leaves.
    assert!(
        tree_mae <= cart_mae * 1.05,
        "tree {tree_mae} vs cart {cart_mae}"
    );
}

#[test]
fn merged_suites_still_classify() {
    // Merge CPU and OMP data (40 benchmarks) and fit one combined tree;
    // everything downstream must still hold its invariants.
    let mut data = generate(&Suite::cpu2006(), 4_000, 108);
    let omp = generate(&Suite::omp2001(), 4_000, 109);
    data.merge(&omp);
    assert_eq!(data.benchmark_count(), 40);

    let tree = ModelTree::fit(&data, &M5Config::default().with_min_leaf(80)).expect("fit");
    let table = ProfileTable::build(&tree, &data);
    assert_eq!(table.names().len(), 40);
    let matrix = SimilarityMatrix::from_table(&table);
    // Spot check: a CPU-only and an OMP-only benchmark should be far
    // apart even in the combined tree's space.
    let d = matrix
        .distance_by_name("444.namd", "328.fma3d_m")
        .expect("both present");
    assert!(d > 0.5, "namd vs fma3d distance {d}");
}
